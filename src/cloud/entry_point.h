#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace cloudmedia::cloud {

/// The tracker's referral to the cloud (Sec. V-B): "If there is insufficient
/// peer supply, the tracking server will return a 3-tuple, i.e., <IP address
/// of a cloud entry point, a list of port numbers, a ticket> to the peer."
struct CloudReferral {
  std::string entry_address;
  std::vector<int> ports;
  std::uint64_t ticket = 0;
};

struct EntryPointConfig {
  std::string address = "cloud.example.net";
  /// Port pool handed out round-robin with each referral.
  std::vector<int> ports = {9000, 9001, 9002, 9003};
  int ports_per_referral = 2;
  /// Tickets expire this long after issue; an expired ticket is refused
  /// and the peer must go back to the tracker.
  double ticket_lifetime = 300.0;
  /// Issued-ticket book size; oldest tickets are evicted beyond this (a
  /// peer holding an evicted ticket is indistinguishable from one holding
  /// a forged ticket and is likewise refused).
  std::size_t max_outstanding = 1 << 20;

  void validate() const;
};

/// Why a ticket was refused (for the request log and tests).
enum class TicketStatus { kValid, kUnknown, kExpired, kAlreadyRedeemed };

[[nodiscard]] std::string to_string(TicketStatus status);

/// Public access point of the cloud (Sec. V-B): issues tickets to the
/// tracker, verifies them when peers connect, and forwards verified
/// requests to a VM via the port-forwarding table. This models the
/// admission path only — actual bandwidth accounting lives in the service
/// pools; what matters here is that un-ticketed requests never reach VMs.
class EntryPoint {
 public:
  explicit EntryPoint(EntryPointConfig config);

  /// Tracker side: mint a referral for a peer (`now` = issue time).
  [[nodiscard]] CloudReferral issue(double now);

  /// Peer side: redeem a ticket at connection time. A ticket is single-use
  /// (one streaming session per referral); the verdict is recorded.
  TicketStatus redeem(std::uint64_t ticket, double now);

  /// Port-forwarding table (Sec. V-B: "the requests will be forwarded to
  /// the VMs in the cloud ... using the port-forwarding technique").
  /// Maps an external port to a VM id; unmapped ports refuse connections.
  void map_port(int external_port, int vm_id);
  void unmap_port(int external_port);
  [[nodiscard]] std::optional<int> forward(int external_port) const;

  // --- introspection ------------------------------------------------------
  [[nodiscard]] std::size_t outstanding() const noexcept { return book_.size(); }
  [[nodiscard]] long issued() const noexcept { return issued_; }
  [[nodiscard]] long redeemed() const noexcept { return redeemed_; }
  [[nodiscard]] long refused() const noexcept { return refused_; }
  [[nodiscard]] const EntryPointConfig& config() const noexcept { return config_; }

  /// Drop expired tickets from the book (bounded memory under churn; also
  /// called internally on issue()).
  void sweep(double now);

 private:
  EntryPointConfig config_;
  std::unordered_map<std::uint64_t, double> book_;  ///< ticket → issue time
  std::unordered_map<int, int> forwarding_;         ///< port → VM id
  std::uint64_t next_ticket_ = 1;
  std::size_t next_port_ = 0;
  long issued_ = 0;
  long redeemed_ = 0;
  long refused_ = 0;
};

}  // namespace cloudmedia::cloud
