#pragma once

#include <vector>

#include "core/storage_rental.h"

namespace cloudmedia::cloud {

/// The cloud-side NFS scheduler (Fig. 1): carries out chunk placement onto
/// the NFS clusters per the consumer's storage-rental solution and meters
/// the per-GB-hour storage charge.
class NfsScheduler {
 public:
  explicit NfsScheduler(std::vector<core::NfsClusterSpec> clusters);

  /// Apply a placement. Throws if it violates any cluster capacity.
  void apply(const core::StorageProblem& problem,
             const core::StorageAssignment& assignment);

  [[nodiscard]] double used_bytes(std::size_t cluster) const;
  [[nodiscard]] int stored_chunks(std::size_t cluster) const;
  /// $/h for the current placement.
  [[nodiscard]] double cost_rate() const;
  [[nodiscard]] std::size_t num_clusters() const noexcept { return clusters_.size(); }

 private:
  std::vector<core::NfsClusterSpec> clusters_;
  std::vector<int> chunk_counts_;
  double chunk_bytes_ = 0.0;
};

}  // namespace cloudmedia::cloud
