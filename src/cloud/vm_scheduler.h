#pragma once

#include <functional>
#include <vector>

#include "core/vm_allocation.h"
#include "sim/simulator.h"

namespace cloudmedia::cloud {

/// The cloud-side VM scheduler (Fig. 1): boots and shuts down VM instances
/// per the consumer's plan. Booting a VM takes `boot_delay` (the paper
/// measures ~25 s, Sec. VI-C); boots happen in parallel, so a whole
/// scale-up becomes effective one boot-delay after the request. Shutdown
/// is immediate ("even less time").
struct VmSchedulerConfig {
  double boot_delay = 25.0;     ///< seconds until new capacity is usable
  double vm_bandwidth = 1'250'000.0;  ///< R, bytes/s per VM
};

class VmScheduler {
 public:
  VmScheduler(sim::Simulator& simulator,
              std::vector<core::VmClusterSpec> clusters,
              VmSchedulerConfig config);

  /// Apply an instance plan for a library of `num_channels` ×
  /// `chunks_per_video` chunks. Billing-wise instances count from the
  /// request; capacity-wise scale-ups ready after boot_delay.
  void apply(const core::VmProblem& problem, const core::InstancePlan& plan,
             int num_channels, int chunks_per_video);

  /// Bandwidth currently deliverable to a chunk (readiness-scaled).
  [[nodiscard]] double chunk_capacity(int channel, int chunk) const;

  /// Total reserved (billed) bandwidth: billed instances × R.
  [[nodiscard]] double reserved_bandwidth() const;
  /// $/h of currently billed instances.
  [[nodiscard]] double cost_rate() const;

  [[nodiscard]] int billed_instances(std::size_t cluster) const;
  [[nodiscard]] int ready_instances(std::size_t cluster) const;
  [[nodiscard]] std::size_t num_clusters() const noexcept { return clusters_.size(); }
  [[nodiscard]] const core::VmClusterSpec& cluster(std::size_t v) const;

  /// Invoked whenever deliverable capacity changes (plan applied or a boot
  /// completed), so the application can refresh its bandwidth pools.
  void set_capacity_listener(std::function<void()> listener);

 private:
  void notify();

  sim::Simulator* sim_;
  std::vector<core::VmClusterSpec> clusters_;
  VmSchedulerConfig config_;

  struct ClusterState {
    int billed = 0;  ///< requested (and charged) instances
    int ready = 0;   ///< instances past their boot delay
    sim::EventId pending_boot = sim::kInvalidEvent;
  };
  std::vector<ClusterState> states_;

  int num_channels_ = 0;
  int chunks_per_video_ = 0;
  /// Planned bandwidth per chunk per cluster, [channel*J + chunk][cluster].
  std::vector<std::vector<double>> chunk_bandwidth_;
  std::function<void()> listener_;
};

}  // namespace cloudmedia::cloud
