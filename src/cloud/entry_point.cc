#include "cloud/entry_point.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace cloudmedia::cloud {

void EntryPointConfig::validate() const {
  CM_EXPECTS(!address.empty());
  CM_EXPECTS(!ports.empty());
  CM_EXPECTS(ports_per_referral >= 1);
  CM_EXPECTS(static_cast<std::size_t>(ports_per_referral) <= ports.size());
  for (int port : ports) CM_EXPECTS(port > 0 && port < 65536);
  CM_EXPECTS(ticket_lifetime > 0.0);
  CM_EXPECTS(max_outstanding >= 1);
}

std::string to_string(TicketStatus status) {
  switch (status) {
    case TicketStatus::kValid: return "valid";
    case TicketStatus::kUnknown: return "unknown";
    case TicketStatus::kExpired: return "expired";
    case TicketStatus::kAlreadyRedeemed: return "already-redeemed";
  }
  return "?";
}

EntryPoint::EntryPoint(EntryPointConfig config) : config_(std::move(config)) {
  config_.validate();
}

CloudReferral EntryPoint::issue(double now) {
  sweep(now);
  if (book_.size() >= config_.max_outstanding) {
    // Evict an arbitrary ticket: the book is full of un-redeemed referrals
    // and refusing to issue would lock new peers out entirely.
    book_.erase(book_.begin());
  }

  CloudReferral referral;
  referral.entry_address = config_.address;
  referral.ports.reserve(static_cast<std::size_t>(config_.ports_per_referral));
  for (int k = 0; k < config_.ports_per_referral; ++k) {
    referral.ports.push_back(config_.ports[next_port_]);
    next_port_ = (next_port_ + 1) % config_.ports.size();
  }
  // Tickets are opaque to peers: a mixed counter is unguessable enough for
  // the model while staying deterministic for tests.
  referral.ticket = util::mix64(next_ticket_++);
  book_.emplace(referral.ticket, now);
  ++issued_;
  return referral;
}

TicketStatus EntryPoint::redeem(std::uint64_t ticket, double now) {
  const auto it = book_.find(ticket);
  if (it == book_.end()) {
    ++refused_;
    // Forged, evicted, or double-spent — the entry point cannot tell a
    // replay from a forgery once the ticket left the book.
    return TicketStatus::kUnknown;
  }
  if (now - it->second > config_.ticket_lifetime) {
    book_.erase(it);
    ++refused_;
    return TicketStatus::kExpired;
  }
  book_.erase(it);
  ++redeemed_;
  return TicketStatus::kValid;
}

void EntryPoint::map_port(int external_port, int vm_id) {
  CM_EXPECTS(std::find(config_.ports.begin(), config_.ports.end(),
                       external_port) != config_.ports.end());
  forwarding_[external_port] = vm_id;
}

void EntryPoint::unmap_port(int external_port) {
  forwarding_.erase(external_port);
}

std::optional<int> EntryPoint::forward(int external_port) const {
  const auto it = forwarding_.find(external_port);
  if (it == forwarding_.end()) return std::nullopt;
  return it->second;
}

void EntryPoint::sweep(double now) {
  for (auto it = book_.begin(); it != book_.end();) {
    if (now - it->second > config_.ticket_lifetime) {
      it = book_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace cloudmedia::cloud
