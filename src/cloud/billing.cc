#include "cloud/billing.h"

#include "util/check.h"

namespace cloudmedia::cloud {

void CostMeter::set_rate(const std::string& category, double dollars_per_hour) {
  CM_EXPECTS(dollars_per_hour >= 0.0);
  Account& account = accounts_[category];
  account.accrued = accrued_to_now(account);
  account.last_change = sim_->now();
  account.rate = dollars_per_hour;
  account.series.add(sim_->now(), dollars_per_hour);
}

double CostMeter::accrued_to_now(const Account& account) const {
  const double hours = (sim_->now() - account.last_change) / 3600.0;
  return account.accrued + account.rate * hours;
}

double CostMeter::current_rate(const std::string& category) const {
  const auto it = accounts_.find(category);
  return it == accounts_.end() ? 0.0 : it->second.rate;
}

double CostMeter::total(const std::string& category) const {
  const auto it = accounts_.find(category);
  return it == accounts_.end() ? 0.0 : accrued_to_now(it->second);
}

double CostMeter::grand_total() const {
  double total = 0.0;
  for (const auto& [name, account] : accounts_) total += accrued_to_now(account);
  return total;
}

const util::TimeSeries& CostMeter::rate_series(const std::string& category) const {
  static const util::TimeSeries kEmpty;
  const auto it = accounts_.find(category);
  return it == accounts_.end() ? kEmpty : it->second.series;
}

}  // namespace cloudmedia::cloud
