#include "cloud/cloud_service.h"

namespace cloudmedia::cloud {

CloudService::CloudService(sim::Simulator& simulator, CloudConfig config)
    : sim_(&simulator),
      sla_(config.sla),
      vm_scheduler_(simulator, config.sla.vm_clusters, config.vm),
      nfs_scheduler_(config.sla.nfs_clusters),
      vm_monitor_(config.sla.vm_clusters.size()),
      billing_(simulator) {}

bool CloudService::submit_plan(const core::ProvisioningPlan& plan,
                               int num_channels, int chunks_per_video) {
  RequestMonitor::Entry entry;
  entry.time = sim_->now();
  entry.vm_cost_rate = plan.vm_cost_rate;
  entry.storage_cost_rate = plan.storage_cost_rate;
  entry.reserved_bandwidth = plan.reserved_bandwidth;

  std::string reason;
  entry.admitted = sla_.admit(plan, &reason);
  entry.reason = reason;
  request_monitor_.record(entry);
  if (!entry.admitted) return false;

  // Record instance churn before the schedulers mutate state.
  for (std::size_t v = 0; v < plan.instances.per_cluster_count.size(); ++v) {
    const int delta =
        plan.instances.per_cluster_count[v] - vm_scheduler_.billed_instances(v);
    if (delta != 0) vm_monitor_.on_scale(v, delta);
  }

  vm_scheduler_.apply(plan.vm_problem, plan.instances, num_channels,
                      chunks_per_video);
  nfs_scheduler_.apply(plan.storage_problem, plan.storage);
  billing_.set_rate("vm", vm_scheduler_.cost_rate());
  billing_.set_rate("storage", nfs_scheduler_.cost_rate());
  return true;
}

}  // namespace cloudmedia::cloud
