#pragma once

#include <string>
#include <vector>

#include "core/controller.h"

namespace cloudmedia::cloud {

/// The negotiated Service Level Agreement between the VoD provider and the
/// cloud (Sec. III-A): budget ceilings and the cluster menus with prices.
struct SlaTerms {
  double vm_budget_per_hour = 100.0;
  double storage_budget_per_hour = 1.0;
  std::vector<core::VmClusterSpec> vm_clusters;
  std::vector<core::NfsClusterSpec> nfs_clusters;
};

/// SLA Negotiator (Fig. 1): validates a submitted plan against the agreed
/// terms before the schedulers act on it.
class SlaNegotiator {
 public:
  explicit SlaNegotiator(SlaTerms terms);

  /// Returns true if the plan honours the SLA; otherwise false with a
  /// reason. A plan flagged infeasible by the consumer's own optimizers is
  /// still admitted (it simply provisions what the budget allows); billing
  /// above the agreed budget is not.
  [[nodiscard]] bool admit(const core::ProvisioningPlan& plan,
                           std::string* reason) const;

  /// Renegotiate the budget ceilings (the cluster menus are fixed for the
  /// life of the agreement). Timed scenario ops route through here so a
  /// mid-run budget cut binds billing, not just the consumer's optimizer.
  void set_budgets(double vm_budget_per_hour, double storage_budget_per_hour);

  [[nodiscard]] const SlaTerms& terms() const noexcept { return terms_; }

 private:
  SlaTerms terms_;
};

/// Request Monitor (Fig. 1): logs every consumer request and its outcome.
class RequestMonitor {
 public:
  struct Entry {
    double time = 0.0;
    bool admitted = false;
    std::string reason;
    double vm_cost_rate = 0.0;
    double storage_cost_rate = 0.0;
    double reserved_bandwidth = 0.0;
  };

  void record(Entry entry) { log_.push_back(std::move(entry)); }
  [[nodiscard]] const std::vector<Entry>& log() const noexcept { return log_; }

 private:
  std::vector<Entry> log_;
};

/// VM Monitor (Fig. 1): tracks provisioning activity per virtual cluster.
class VmMonitor {
 public:
  explicit VmMonitor(std::size_t num_clusters)
      : boots_(num_clusters, 0), shutdowns_(num_clusters, 0) {}

  void on_scale(std::size_t cluster, int delta);
  [[nodiscard]] long boots(std::size_t cluster) const;
  [[nodiscard]] long shutdowns(std::size_t cluster) const;
  [[nodiscard]] long total_boots() const;
  [[nodiscard]] long total_shutdowns() const;

 private:
  std::vector<long> boots_;
  std::vector<long> shutdowns_;
};

}  // namespace cloudmedia::cloud
