#include "predict/forecaster.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace cloudmedia::predict {

namespace {

double clamp_rate(double x) noexcept { return x > 0.0 ? x : 0.0; }

}  // namespace

// --- persistence -----------------------------------------------------------

void PersistenceForecaster::observe(double value) {
  CM_EXPECTS(value >= 0.0);
  last_ = value;
}

double PersistenceForecaster::forecast() const { return last_; }

std::unique_ptr<Forecaster> PersistenceForecaster::clone() const {
  return std::make_unique<PersistenceForecaster>(*this);
}

// --- moving average ---------------------------------------------------------

MovingAverageForecaster::MovingAverageForecaster(int window)
    : window_(window), ring_(static_cast<std::size_t>(std::max(window, 1))) {
  CM_EXPECTS(window >= 1);
}

void MovingAverageForecaster::observe(double value) {
  CM_EXPECTS(value >= 0.0);
  ring_[next_] = value;
  next_ = (next_ + 1) % ring_.size();
  filled_ = std::min(filled_ + 1, ring_.size());
}

double MovingAverageForecaster::forecast() const {
  if (filled_ == 0) return 0.0;
  const double sum = std::accumulate(ring_.begin(),
                                     ring_.begin() + static_cast<long>(filled_),
                                     0.0);
  return sum / static_cast<double>(filled_);
}

std::string MovingAverageForecaster::name() const {
  return "ma" + std::to_string(window_);
}

std::unique_ptr<Forecaster> MovingAverageForecaster::clone() const {
  return std::make_unique<MovingAverageForecaster>(*this);
}

// --- EWMA -------------------------------------------------------------------

EwmaForecaster::EwmaForecaster(double alpha) : alpha_(alpha) {
  CM_EXPECTS(alpha > 0.0 && alpha <= 1.0);
}

void EwmaForecaster::observe(double value) {
  CM_EXPECTS(value >= 0.0);
  level_ = seen_ ? (1.0 - alpha_) * level_ + alpha_ * value : value;
  seen_ = true;
}

double EwmaForecaster::forecast() const { return seen_ ? level_ : 0.0; }

std::string EwmaForecaster::name() const { return "ewma"; }

std::unique_ptr<Forecaster> EwmaForecaster::clone() const {
  return std::make_unique<EwmaForecaster>(*this);
}

// --- Holt linear ------------------------------------------------------------

HoltForecaster::HoltForecaster(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {
  CM_EXPECTS(alpha > 0.0 && alpha <= 1.0);
  CM_EXPECTS(beta >= 0.0 && beta <= 1.0);
}

void HoltForecaster::observe(double value) {
  CM_EXPECTS(value >= 0.0);
  if (seen_ == 0) {
    level_ = value;
    trend_ = 0.0;
  } else if (seen_ == 1) {
    // Standard initialization: the first difference seeds the trend.
    trend_ = value - level_;
    level_ = value;
  } else {
    const double prev_level = level_;
    level_ = alpha_ * value + (1.0 - alpha_) * (level_ + trend_);
    trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
  }
  ++seen_;
}

double HoltForecaster::forecast() const {
  if (seen_ == 0) return 0.0;
  return clamp_rate(level_ + trend_);
}

std::string HoltForecaster::name() const { return "holt"; }

std::unique_ptr<Forecaster> HoltForecaster::clone() const {
  return std::make_unique<HoltForecaster>(*this);
}

// --- seasonal naive ---------------------------------------------------------

SeasonalNaiveForecaster::SeasonalNaiveForecaster(int period) : period_(period) {
  CM_EXPECTS(period >= 1);
}

void SeasonalNaiveForecaster::observe(double value) {
  CM_EXPECTS(value >= 0.0);
  history_.push_back(value);
}

double SeasonalNaiveForecaster::forecast() const {
  if (history_.empty()) return 0.0;
  const auto p = static_cast<std::size_t>(period_);
  // The next observation is history_[n]; its seasonal twin is n − period.
  if (history_.size() < p) return history_.back();
  return history_[history_.size() - p];
}

std::string SeasonalNaiveForecaster::name() const {
  return "seasonal-naive" + std::to_string(period_);
}

std::unique_ptr<Forecaster> SeasonalNaiveForecaster::clone() const {
  return std::make_unique<SeasonalNaiveForecaster>(*this);
}

// --- seasonal EWMA profile ---------------------------------------------------

SeasonalEwmaForecaster::SeasonalEwmaForecaster(int period, double alpha,
                                               double blend)
    : period_(period),
      alpha_(alpha),
      blend_(blend),
      profile_(static_cast<std::size_t>(std::max(period, 1)), -1.0) {
  CM_EXPECTS(period >= 1);
  CM_EXPECTS(alpha > 0.0 && alpha <= 1.0);
  CM_EXPECTS(blend >= 0.0 && blend <= 1.0);
}

void SeasonalEwmaForecaster::observe(double value) {
  CM_EXPECTS(value >= 0.0);
  double& slot = profile_[static_cast<std::size_t>(next_slot_)];
  slot = slot < 0.0 ? value : (1.0 - alpha_) * slot + alpha_ * value;
  next_slot_ = (next_slot_ + 1) % period_;
  last_ = value;
  seen_ = true;
}

double SeasonalEwmaForecaster::forecast() const {
  if (!seen_) return 0.0;
  const double seasonal = profile_[static_cast<std::size_t>(next_slot_)];
  if (seasonal < 0.0) return last_;  // slot never seen: persistence
  return clamp_rate(blend_ * seasonal + (1.0 - blend_) * last_);
}

double SeasonalEwmaForecaster::profile(int slot) const {
  CM_EXPECTS(slot >= 0 && slot < period_);
  return profile_[static_cast<std::size_t>(slot)];
}

std::string SeasonalEwmaForecaster::name() const { return "seasonal-ewma"; }

std::unique_ptr<Forecaster> SeasonalEwmaForecaster::clone() const {
  return std::make_unique<SeasonalEwmaForecaster>(*this);
}

// --- Holt–Winters additive ---------------------------------------------------

HoltWintersForecaster::HoltWintersForecaster(double alpha, double beta,
                                             double gamma, int period)
    : alpha_(alpha),
      beta_(beta),
      gamma_(gamma),
      period_(period),
      seasonal_(static_cast<std::size_t>(std::max(period, 1)), 0.0) {
  CM_EXPECTS(alpha > 0.0 && alpha <= 1.0);
  CM_EXPECTS(beta >= 0.0 && beta <= 1.0);
  CM_EXPECTS(gamma >= 0.0 && gamma <= 1.0);
  CM_EXPECTS(period >= 2);
}

void HoltWintersForecaster::observe(double value) {
  CM_EXPECTS(value >= 0.0);
  if (!initialized_) {
    warmup_.push_back(value);
    if (warmup_.size() == static_cast<std::size_t>(period_)) {
      // First period done: level = period mean, seasonal = deviations,
      // trend = mean first difference across the period.
      const double mean =
          std::accumulate(warmup_.begin(), warmup_.end(), 0.0) /
          static_cast<double>(period_);
      for (int s = 0; s < period_; ++s) {
        seasonal_[static_cast<std::size_t>(s)] =
            warmup_[static_cast<std::size_t>(s)] - mean;
      }
      level_ = mean;
      trend_ = (warmup_.back() - warmup_.front()) /
               static_cast<double>(period_ - 1) / static_cast<double>(period_);
      next_slot_ = 0;
      initialized_ = true;
      warmup_.clear();
      warmup_.shrink_to_fit();
    } else {
      // Behave like persistence-with-trend while warming up.
      level_ = value;
    }
    return;
  }

  double& season = seasonal_[static_cast<std::size_t>(next_slot_)];
  const double prev_level = level_;
  level_ = alpha_ * (value - season) + (1.0 - alpha_) * (level_ + trend_);
  trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
  season = gamma_ * (value - level_) + (1.0 - gamma_) * season;
  next_slot_ = (next_slot_ + 1) % period_;
}

double HoltWintersForecaster::forecast() const {
  if (!initialized_) return level_;  // warmup: last value
  return clamp_rate(level_ + trend_ +
                    seasonal_[static_cast<std::size_t>(next_slot_)]);
}

double HoltWintersForecaster::seasonal(int slot) const {
  CM_EXPECTS(slot >= 0 && slot < period_);
  return seasonal_[static_cast<std::size_t>(slot)];
}

std::string HoltWintersForecaster::name() const { return "holt-winters"; }

std::unique_ptr<Forecaster> HoltWintersForecaster::clone() const {
  return std::make_unique<HoltWintersForecaster>(*this);
}

// --- factory ------------------------------------------------------------------

std::string to_string(ForecasterKind kind) {
  switch (kind) {
    case ForecasterKind::kPersistence: return "persistence";
    case ForecasterKind::kMovingAverage: return "moving-average";
    case ForecasterKind::kEwma: return "ewma";
    case ForecasterKind::kHolt: return "holt";
    case ForecasterKind::kSeasonalNaive: return "seasonal-naive";
    case ForecasterKind::kSeasonalEwma: return "seasonal-ewma";
    case ForecasterKind::kHoltWinters: return "holt-winters";
  }
  throw util::PreconditionError("unknown ForecasterKind");
}

ForecasterKind forecaster_kind_from_string(const std::string& s) {
  for (ForecasterKind kind : all_forecaster_kinds()) {
    if (s == to_string(kind)) return kind;
  }
  // Short aliases for the command line.
  if (s == "last" || s == "naive") return ForecasterKind::kPersistence;
  if (s == "ma") return ForecasterKind::kMovingAverage;
  if (s == "hw") return ForecasterKind::kHoltWinters;
  throw util::PreconditionError("unknown forecaster kind: " + s);
}

const std::vector<ForecasterKind>& all_forecaster_kinds() {
  static const std::vector<ForecasterKind> kinds = {
      ForecasterKind::kPersistence,  ForecasterKind::kMovingAverage,
      ForecasterKind::kEwma,         ForecasterKind::kHolt,
      ForecasterKind::kSeasonalNaive, ForecasterKind::kSeasonalEwma,
      ForecasterKind::kHoltWinters,
  };
  return kinds;
}

void ForecasterSpec::validate() const {
  CM_EXPECTS(window >= 1);
  CM_EXPECTS(alpha > 0.0 && alpha <= 1.0);
  CM_EXPECTS(beta >= 0.0 && beta <= 1.0);
  CM_EXPECTS(gamma >= 0.0 && gamma <= 1.0);
  CM_EXPECTS(blend >= 0.0 && blend <= 1.0);
  CM_EXPECTS(period >= 1);
  if (kind == ForecasterKind::kHoltWinters) CM_EXPECTS(period >= 2);
}

std::unique_ptr<Forecaster> make_forecaster(const ForecasterSpec& spec) {
  spec.validate();
  switch (spec.kind) {
    case ForecasterKind::kPersistence:
      return std::make_unique<PersistenceForecaster>();
    case ForecasterKind::kMovingAverage:
      return std::make_unique<MovingAverageForecaster>(spec.window);
    case ForecasterKind::kEwma:
      return std::make_unique<EwmaForecaster>(spec.alpha);
    case ForecasterKind::kHolt:
      return std::make_unique<HoltForecaster>(spec.alpha, spec.beta);
    case ForecasterKind::kSeasonalNaive:
      return std::make_unique<SeasonalNaiveForecaster>(spec.period);
    case ForecasterKind::kSeasonalEwma:
      return std::make_unique<SeasonalEwmaForecaster>(spec.period, spec.alpha,
                                                      spec.blend);
    case ForecasterKind::kHoltWinters:
      return std::make_unique<HoltWintersForecaster>(spec.alpha, spec.beta,
                                                     spec.gamma, spec.period);
  }
  throw util::PreconditionError("unknown ForecasterKind");
}

}  // namespace cloudmedia::predict
