#include "predict/accuracy.h"

#include <cmath>

namespace cloudmedia::predict {

void ForecastScore::add(double forecast, double actual) {
  const double error = forecast - actual;
  ++count_;
  abs_sum_ += std::abs(error);
  sq_sum_ += error * error;
  signed_sum_ += error;
  if (forecast < actual) {
    ++under_count_;
    shortfall_sum_ += actual - forecast;
  }
  if (actual > mape_floor) {
    ++mape_count_;
    mape_sum_ += std::abs(error) / actual;
  }
}

void ForecastScore::merge(const ForecastScore& other) noexcept {
  count_ += other.count_;
  abs_sum_ += other.abs_sum_;
  sq_sum_ += other.sq_sum_;
  signed_sum_ += other.signed_sum_;
  shortfall_sum_ += other.shortfall_sum_;
  under_count_ += other.under_count_;
  mape_count_ += other.mape_count_;
  mape_sum_ += other.mape_sum_;
}

double ForecastScore::mae() const noexcept {
  return count_ ? abs_sum_ / static_cast<double>(count_) : 0.0;
}

double ForecastScore::rmse() const noexcept {
  return count_ ? std::sqrt(sq_sum_ / static_cast<double>(count_)) : 0.0;
}

double ForecastScore::mape() const noexcept {
  return mape_count_ ? mape_sum_ / static_cast<double>(mape_count_) : 0.0;
}

double ForecastScore::bias() const noexcept {
  return count_ ? signed_sum_ / static_cast<double>(count_) : 0.0;
}

double ForecastScore::under_fraction() const noexcept {
  return count_ ? static_cast<double>(under_count_) / static_cast<double>(count_)
                : 0.0;
}

double ForecastScore::mean_shortfall() const noexcept {
  return count_ ? shortfall_sum_ / static_cast<double>(count_) : 0.0;
}

}  // namespace cloudmedia::predict
