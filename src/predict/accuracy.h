#pragma once

#include <cstddef>

namespace cloudmedia::predict {

/// Streaming accuracy metrics for one-step forecasts. For capacity
/// provisioning the sign of the error matters as much as its size: an
/// under-forecast translates into under-provisioned bandwidth (late chunks,
/// quality loss) while an over-forecast only costs money — hence `bias` and
/// `under_fraction` alongside the usual MAE/RMSE/MAPE.
class ForecastScore {
 public:
  /// Record one (forecast, actual) pair, in units of the forecast target.
  void add(double forecast, double actual);

  void merge(const ForecastScore& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  /// Mean absolute error; 0 when empty.
  [[nodiscard]] double mae() const noexcept;
  /// Root mean squared error; 0 when empty.
  [[nodiscard]] double rmse() const noexcept;
  /// Mean |error| / actual over pairs with actual > `mape_floor`; 0 when no
  /// such pair exists (all-idle channels produce actual = 0, which would
  /// make the classic MAPE blow up).
  [[nodiscard]] double mape() const noexcept;
  /// Mean signed error (forecast − actual): negative = systematically
  /// under-provisioning.
  [[nodiscard]] double bias() const noexcept;
  /// Fraction of pairs with forecast < actual (the dangerous direction).
  [[nodiscard]] double under_fraction() const noexcept;
  /// Mean of the under-shoot magnitude max(0, actual − forecast).
  [[nodiscard]] double mean_shortfall() const noexcept;

  /// Actual values at or below this are excluded from MAPE only.
  static constexpr double mape_floor = 1e-12;

 private:
  std::size_t count_ = 0;
  double abs_sum_ = 0.0;
  double sq_sum_ = 0.0;
  double signed_sum_ = 0.0;
  double shortfall_sum_ = 0.0;
  std::size_t under_count_ = 0;
  std::size_t mape_count_ = 0;
  double mape_sum_ = 0.0;
};

}  // namespace cloudmedia::predict
