#include "predict/policy.h"

#include <utility>

#include "util/check.h"

namespace cloudmedia::predict {

ForecastPolicy::ForecastPolicy(core::VodParameters params,
                               core::DemandEstimatorConfig config,
                               ForecasterSpec spec)
    : estimator_(params, config), spec_(spec) {
  spec_.validate();
}

std::string ForecastPolicy::name() const {
  return "forecast:" + to_string(spec_.kind);
}

double ForecastPolicy::last_forecast(int channel) const {
  if (channel < 0 || static_cast<std::size_t>(channel) >= pending_.size())
    return -1.0;
  return pending_[static_cast<std::size_t>(channel)];
}

core::DemandSet ForecastPolicy::estimate(const core::TrackerReport& report) {
  if (bank_.empty()) {
    bank_.reserve(report.channels.size());
    const auto prototype = make_forecaster(spec_);
    for (std::size_t c = 0; c < report.channels.size(); ++c) {
      bank_.push_back(prototype->clone());
    }
    pending_.assign(report.channels.size(), -1.0);
  }
  CM_EXPECTS(bank_.size() == report.channels.size());

  core::DemandSet out;
  out.cloud_demand.reserve(report.channels.size());
  out.estimates.reserve(report.channels.size());
  for (std::size_t c = 0; c < report.channels.size(); ++c) {
    const double measured = report.channels[c].arrival_rate;
    // Score the forecast this channel ran on during the interval that just
    // ended, now that its actual is known.
    if (pending_[c] >= 0.0) score_.add(pending_[c], measured);

    bank_[c]->observe(measured);
    const double predicted = bank_[c]->forecast();
    pending_[c] = predicted;

    core::ChannelObservation obs = report.channels[c];
    obs.arrival_rate = predicted;
    core::ChannelDemandEstimate est = estimator_.estimate(obs);
    out.cloud_demand.push_back(est.cloud_demand);
    out.estimates.push_back(std::move(est));
  }
  return out;
}

}  // namespace cloudmedia::predict
