#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/demand.h"
#include "predict/accuracy.h"
#include "predict/forecaster.h"

namespace cloudmedia::predict {

/// Demand policy that drives the paper's Sec.-IV queueing model with a
/// pluggable arrival-rate forecaster instead of last-interval persistence.
///
/// Each channel gets its own forecaster (cloned from the spec). Every
/// interval the measured rate Λ̂ is fed to the channel's forecaster, the
/// next interval's rate is forecast, and the Sec.-IV pipeline (traffic
/// equations → Erlang sizing → peer-supply subtraction) runs on the
/// forecast rate with the *measured* viewing patterns P̂ — exactly the
/// paper's controller with the predictor swapped out.
///
/// With ForecasterKind::kPersistence this is behaviourally identical to
/// core::ModelBasedPolicy (a test asserts so); the other kinds implement
/// the paper's deferred "more accurate prediction" future work.
class ForecastPolicy final : public core::DemandPolicy {
 public:
  ForecastPolicy(core::VodParameters params,
                 core::DemandEstimatorConfig config, ForecasterSpec spec);

  [[nodiscard]] core::DemandSet estimate(
      const core::TrackerReport& report) override;
  [[nodiscard]] std::string name() const override;

  /// One-step accuracy pooled over all channels: each interval's forecast
  /// is scored against the next interval's measurement.
  [[nodiscard]] const ForecastScore& score() const noexcept { return score_; }
  /// The rate the policy used for `channel` in the last estimate() call;
  /// negative before the first call.
  [[nodiscard]] double last_forecast(int channel) const;

 private:
  core::DemandEstimator estimator_;
  ForecasterSpec spec_;
  std::vector<std::unique_ptr<Forecaster>> bank_;  ///< one per channel
  std::vector<double> pending_;  ///< forecasts awaiting their actuals
  ForecastScore score_;
};

}  // namespace cloudmedia::predict
