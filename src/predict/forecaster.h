#pragma once

#include <memory>
#include <string>
#include <vector>

namespace cloudmedia::predict {

/// One-step-ahead arrival-rate forecaster.
///
/// The paper's provisioning algorithm predicts the next interval's demand
/// with the previous interval's measurement ("user arrival patterns in the
/// previous time interval (hour) are used to predict the capacity demand in
/// the next interval", Sec. V-B) and explicitly defers "more accurate
/// prediction method[s] based on historical data collected over more
/// intervals" to future work. This module implements that future work: a
/// family of forecasters that all consume the same per-interval measured
/// means and emit the next interval's estimate.
///
/// Observations arrive at the provisioning cadence (one value per interval,
/// in order); seasonal forecasters express their period in *intervals*
/// (24 for the paper's hourly controller and daily pattern). Forecasts are
/// clamped to be non-negative — a negative arrival rate is meaningless.
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Record the measured mean of the interval that just ended.
  virtual void observe(double value) = 0;

  /// Estimate the mean of the next interval. Before any observation this
  /// returns 0 (no information — the controller's bootstrap plan covers
  /// the first interval).
  [[nodiscard]] virtual double forecast() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Fresh copy with identical state (one forecaster per channel is cloned
  /// from a prototype).
  [[nodiscard]] virtual std::unique_ptr<Forecaster> clone() const = 0;
};

/// The paper's predictor: next interval = last interval.
class PersistenceForecaster final : public Forecaster {
 public:
  void observe(double value) override;
  [[nodiscard]] double forecast() const override;
  [[nodiscard]] std::string name() const override { return "persistence"; }
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override;

 private:
  double last_ = 0.0;
};

/// Mean of the last `window` observations.
class MovingAverageForecaster final : public Forecaster {
 public:
  explicit MovingAverageForecaster(int window);
  void observe(double value) override;
  [[nodiscard]] double forecast() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override;

 private:
  int window_;
  std::vector<double> ring_;
  std::size_t next_ = 0;
  std::size_t filled_ = 0;
};

/// Exponentially weighted moving average with smoothing factor `alpha`
/// (weight on the newest observation).
class EwmaForecaster final : public Forecaster {
 public:
  explicit EwmaForecaster(double alpha);
  void observe(double value) override;
  [[nodiscard]] double forecast() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override;

 private:
  double alpha_;
  double level_ = 0.0;
  bool seen_ = false;
};

/// Holt's linear (double-exponential) smoothing: level + trend. Reacts to
/// ramps — the flanks of the paper's flash crowds — where persistence lags
/// a full interval.
class HoltForecaster final : public Forecaster {
 public:
  HoltForecaster(double alpha, double beta);
  void observe(double value) override;
  [[nodiscard]] double forecast() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override;

  [[nodiscard]] double level() const noexcept { return level_; }
  [[nodiscard]] double trend() const noexcept { return trend_; }

 private:
  double alpha_;
  double beta_;
  double level_ = 0.0;
  double trend_ = 0.0;
  int seen_ = 0;
};

/// Last value observed at the same slot of the previous period (the value
/// this hour yesterday). Falls back to persistence until a full period has
/// been observed.
class SeasonalNaiveForecaster final : public Forecaster {
 public:
  explicit SeasonalNaiveForecaster(int period);
  void observe(double value) override;
  [[nodiscard]] double forecast() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override;

 private:
  int period_;
  std::vector<double> history_;  ///< all observations, in order
};

/// Per-slot EWMA over previous periods, blended with persistence:
///   forecast = blend · profile[next slot] + (1 − blend) · last value.
/// The library form of `core::SeasonalPolicy`'s predictor.
class SeasonalEwmaForecaster final : public Forecaster {
 public:
  SeasonalEwmaForecaster(int period, double alpha, double blend);
  void observe(double value) override;
  [[nodiscard]] double forecast() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override;

  /// Profile estimate for a slot; negative = that slot never observed.
  [[nodiscard]] double profile(int slot) const;

 private:
  int period_;
  double alpha_;
  double blend_;
  std::vector<double> profile_;  ///< per-slot EWMA, −1 marks unseen
  int next_slot_ = 0;            ///< slot of the *next* observation
  double last_ = 0.0;
  bool seen_ = false;
};

/// Additive Holt–Winters: level + trend + per-slot seasonal component.
/// The first full period initializes the seasonal indices (deviations from
/// the running mean); until then it behaves like Holt.
class HoltWintersForecaster final : public Forecaster {
 public:
  HoltWintersForecaster(double alpha, double beta, double gamma, int period);
  void observe(double value) override;
  [[nodiscard]] double forecast() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override;

  [[nodiscard]] double level() const noexcept { return level_; }
  [[nodiscard]] double trend() const noexcept { return trend_; }
  [[nodiscard]] double seasonal(int slot) const;

 private:
  double alpha_;
  double beta_;
  double gamma_;
  int period_;
  double level_ = 0.0;
  double trend_ = 0.0;
  std::vector<double> seasonal_;
  std::vector<double> warmup_;  ///< first-period buffer
  int next_slot_ = 0;
  bool initialized_ = false;    ///< seasonal indices ready
};

/// Forecaster families selectable from configuration / command line.
enum class ForecasterKind {
  kPersistence,
  kMovingAverage,
  kEwma,
  kHolt,
  kSeasonalNaive,
  kSeasonalEwma,
  kHoltWinters,
};

[[nodiscard]] std::string to_string(ForecasterKind kind);
/// Parse `to_string` output (and short aliases); throws on unknown names.
[[nodiscard]] ForecasterKind forecaster_kind_from_string(const std::string& s);
/// All kinds, for parameterized tests and comparison benches.
[[nodiscard]] const std::vector<ForecasterKind>& all_forecaster_kinds();

/// Value-semantic description of a forecaster; defaults are sensible for
/// the paper's hourly cadence and daily seasonality.
struct ForecasterSpec {
  ForecasterKind kind = ForecasterKind::kPersistence;
  int window = 3;        ///< moving average
  double alpha = 0.5;    ///< level smoothing (EWMA / Holt / HW / profile)
  double beta = 0.2;     ///< trend smoothing (Holt / HW)
  double gamma = 0.3;    ///< seasonal smoothing (HW)
  double blend = 0.7;    ///< seasonal-vs-persistence weight (seasonal EWMA)
  int period = 24;       ///< slots per season (hours per day)

  void validate() const;
};

[[nodiscard]] std::unique_ptr<Forecaster> make_forecaster(
    const ForecasterSpec& spec);

}  // namespace cloudmedia::predict
