#include "geo/federation.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cloudmedia::geo {

void RegionSpec::validate() const {
  CM_EXPECTS(!name.empty());
  CM_EXPECTS(audience_share > 0.0 && audience_share <= 1.0);
  CM_EXPECTS(vm_price_multiplier > 0.0);
  CM_EXPECTS(storage_price_multiplier > 0.0);
}

std::string to_string(BudgetSplit split) {
  switch (split) {
    case BudgetSplit::kUncoordinated: return "uncoordinated";
    case BudgetSplit::kProportional: return "proportional";
  }
  return "?";
}

FederationConfig FederationConfig::make_default(core::StreamingMode mode) {
  FederationConfig cfg;
  cfg.base = expr::ExperimentConfig::make_default(mode);
  cfg.regions = {
      {"asia", 0.0, 0.45, 1.0, 1.0},
      {"europe", -7.0, 0.30, 1.1, 1.1},
      {"americas", -15.0, 0.25, 1.05, 1.05},
  };
  return cfg;
}

void FederationConfig::validate() const {
  base.validate();
  CM_EXPECTS(!regions.empty());
  double total_share = 0.0;
  for (const RegionSpec& region : regions) {
    region.validate();
    total_share += region.audience_share;
  }
  // Shares describe how the one global audience is partitioned.
  CM_EXPECTS(std::abs(total_share - 1.0) < 1e-9);
}

expr::ExperimentConfig FederationRunner::regional_config(
    const FederationConfig& config, std::size_t region_index) {
  CM_EXPECTS(region_index < config.regions.size());
  const RegionSpec& region = config.regions[region_index];

  expr::ExperimentConfig out = config.base;
  out.workload.total_arrival_rate *= region.audience_share;
  // A region `utc_offset` hours east of the reference hits its local noon
  // `utc_offset` hours *earlier* in reference time.
  out.workload.diurnal =
      config.base.workload.diurnal.shifted(-region.utc_offset_hours);
  for (core::VmClusterSpec& cluster : out.vm_clusters) {
    cluster.price_per_hour *= region.vm_price_multiplier;
  }
  for (core::NfsClusterSpec& cluster : out.nfs_clusters) {
    cluster.price_per_gb_hour *= region.storage_price_multiplier;
  }
  if (config.budget_split == BudgetSplit::kProportional) {
    out.vm_budget_per_hour *= region.audience_share;
    out.storage_budget_per_hour *= region.audience_share;
  }
  // Independent populations per region, deterministic in the base seed.
  out.seed = config.base.seed + 1000003 * (region_index + 1);
  return out;
}

FederationResult FederationRunner::run(const FederationConfig& config) {
  config.validate();

  FederationResult out;
  out.regions.reserve(config.regions.size());
  for (std::size_t k = 0; k < config.regions.size(); ++k) {
    RegionResult region;
    region.spec = config.regions[k];
    region.config = regional_config(config, k);
    region.result = expr::ExperimentRunner::run(region.config);
    out.regions.push_back(std::move(region));
  }
  out.measure_start = out.regions.front().result.measure_start;
  out.measure_end = out.regions.front().result.measure_end;
  return out;
}

util::TimeSeries FederationResult::global_cost_series() const {
  util::TimeSeries global;
  for (double t = measure_start; t + 3600.0 <= measure_end + 1e-9;
       t += 3600.0) {
    double sum = 0.0;
    for (const RegionResult& region : regions) {
      sum += region.result.metrics.vm_cost_rate.mean_over(t, t + 3600.0);
    }
    global.add(t, sum);
  }
  return global;
}

double FederationResult::global_mean_cost() const {
  double sum = 0.0;
  for (const RegionResult& region : regions) {
    sum += region.result.mean_vm_cost_rate();
  }
  return sum;
}

double FederationResult::global_peak_cost() const {
  return global_cost_series().max_value();
}

double FederationResult::sum_of_regional_peaks() const {
  double sum = 0.0;
  for (const RegionResult& region : regions) {
    const util::TimeSeries hourly =
        region.result.metrics.vm_cost_rate.resample(measure_start, 3600.0);
    sum += hourly.max_value();
  }
  return sum;
}

double FederationResult::multiplexing_gain() const {
  const double peak = global_peak_cost();
  return peak > 0.0 ? sum_of_regional_peaks() / peak : 1.0;
}

double FederationResult::min_quality() const {
  double worst = 1.0;
  for (const RegionResult& region : regions) {
    worst = std::min(worst, region.result.mean_quality());
  }
  return worst;
}

double FederationResult::weighted_quality() const {
  double acc = 0.0;
  for (const RegionResult& region : regions) {
    acc += region.spec.audience_share * region.result.mean_quality();
  }
  return acc;
}

}  // namespace cloudmedia::geo
