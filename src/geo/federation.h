#pragma once

#include <string>
#include <vector>

#include "expr/config.h"
#include "expr/runner.h"
#include "util/stats.h"

namespace cloudmedia::geo {

/// One geographic deployment region of a federated CloudMedia service —
/// the paper's stated ongoing work ("we are expanding to cloud systems
/// spanning different geographic locations", Sec. VII).
///
/// A region is a full CloudMedia stack (cloud + swarm + controller) serving
/// the slice of the global audience whose local time drives its diurnal
/// pattern. Regional clouds may price differently (spot/zone economics).
struct RegionSpec {
  std::string name;
  /// Shift of the diurnal pattern relative to the reference region, in
  /// hours. A region 7 hours west sees the same noon/evening crowds 7
  /// hours later in reference time.
  double utc_offset_hours = 0.0;
  /// Fraction of the global external arrival rate originating here.
  double audience_share = 0.0;
  /// Regional price multipliers applied to the cluster menus.
  double vm_price_multiplier = 1.0;
  double storage_price_multiplier = 1.0;

  void validate() const;
};

/// How the provider splits its global budget across regional controllers.
enum class BudgetSplit {
  /// Every region gets the full global budget (budgets are caps, not
  /// spending — the baseline for "no coordination").
  kUncoordinated,
  /// Budget proportional to the region's audience share.
  kProportional,
};

[[nodiscard]] std::string to_string(BudgetSplit split);

struct FederationConfig {
  /// Template experiment: workload scale, VoD model, cluster menus and
  /// budgets of the *global* service. Each region runs a copy with its
  /// share of the arrival rate, its shifted diurnal pattern, its price
  /// multipliers, and its budget slice.
  expr::ExperimentConfig base;
  std::vector<RegionSpec> regions;
  BudgetSplit budget_split = BudgetSplit::kProportional;

  /// The paper-shaped default federation: three regions (Asia / Europe /
  /// Americas) with staggered time zones and a 45/30/25 audience split.
  [[nodiscard]] static FederationConfig make_default(core::StreamingMode mode);

  void validate() const;
};

struct RegionResult {
  RegionSpec spec;
  expr::ExperimentConfig config;  ///< the regional config actually run
  expr::ExperimentResult result;
};

/// Aggregate view of a federated run.
struct FederationResult {
  std::vector<RegionResult> regions;
  double measure_start = 0.0;
  double measure_end = 0.0;

  /// Hourly global VM bill: sum of regional vm_cost_rate means per hour.
  [[nodiscard]] util::TimeSeries global_cost_series() const;
  /// Σ over regions of the mean regional bill ($/h).
  [[nodiscard]] double global_mean_cost() const;
  /// Peak of the global hourly bill ($/h).
  [[nodiscard]] double global_peak_cost() const;
  /// Σ over regions of each region's own peak hourly bill — what the
  /// provider would need to stand ready for without time-zone multiplexing.
  [[nodiscard]] double sum_of_regional_peaks() const;
  /// sum_of_regional_peaks / global_peak_cost (≥ 1): how much peak capacity
  /// the staggered time zones save a provider with pooled resources.
  [[nodiscard]] double multiplexing_gain() const;
  /// Worst regional mean streaming quality.
  [[nodiscard]] double min_quality() const;
  /// Mean streaming quality weighted by audience share.
  [[nodiscard]] double weighted_quality() const;
};

/// Run every region's full stack on its own simulator (regions share no
/// infrastructure in this model — they interact only through the budget
/// split and the aggregate accounting).
class FederationRunner {
 public:
  [[nodiscard]] static FederationResult run(const FederationConfig& config);

  /// The regional config derived from (base, region, split) — exposed so
  /// tests can check the derivation without paying for a simulation.
  [[nodiscard]] static expr::ExperimentConfig regional_config(
      const FederationConfig& config, std::size_t region_index);
};

}  // namespace cloudmedia::geo
