#include "store/results_store.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/check.h"
#include "util/csv.h"
#include "util/json.h"

namespace cloudmedia::store {

namespace {

/// The self-describing first line of the JSONL stream: enough to validate
/// on read-back and to identify an interrupted sweep's partial output.
util::JsonValue header_line(const sweep::SweepResult& header) {
  util::JsonValue root = util::JsonValue::object();
  root["type"] = "header";
  root["scenario"] = header.scenario;
  root["base_seed"] = std::to_string(header.base_seed);
  root["spec_hash"] = header.spec_hash;
  util::JsonValue shard = util::JsonValue::object();
  shard["index"] = static_cast<double>(header.shard_index);
  shard["count"] = static_cast<double>(header.shard_count);
  shard["total_cells"] = static_cast<double>(header.total_cells);
  root["shard"] = std::move(shard);
  util::JsonValue grid = util::JsonValue::array();
  for (const sweep::ParamAxis& axis : header.axes) {
    util::JsonValue entry = util::JsonValue::object();
    entry["name"] = axis.name;
    util::JsonValue values = util::JsonValue::array();
    for (const std::string& value : axis.values) values.push_back(value);
    entry["values"] = std::move(values);
    grid.push_back(std::move(entry));
  }
  root["grid"] = std::move(grid);
  return root;
}

std::string join_csv(const std::vector<std::string>& fields) {
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) line += ',';
    line += util::CsvWriter::escape(fields[i]);
  }
  line += '\n';
  return line;
}

}  // namespace

ResultsStore::ResultsStore(StoreOptions options, const sweep::SweepSpec& spec)
    : options_(std::move(options)) {
  CM_EXPECTS(!options_.base.empty());
  CM_EXPECTS(options_.buffer_capacity >= 1);
  CM_EXPECTS(options_.batch_rows >= 1);

  header_.scenario = spec.scenario;
  header_.base_seed = spec.base_seed;
  header_.axes = spec.grid.axes();
  header_.shard_index = spec.shard.index;
  header_.shard_count = spec.shard.count;
  header_.total_cells = spec.grid.num_points();
  header_.spec_hash = spec.spec_hash();
  expected_cells_ =
      sweep::SweepRunner::shard_cells(header_.total_cells, spec.shard);

  jsonl_path_ = options_.base + ".jsonl";
  csv_path_ = options_.base + ".stream.csv";
  util::ensure_parent_directory(jsonl_path_);
  jsonl_.open(jsonl_path_, std::ios::trunc);
  if (!jsonl_) {
    throw std::runtime_error("ResultsStore: cannot open '" + jsonl_path_ +
                             "' for writing: " + std::strerror(errno));
  }
  csv_.open(csv_path_, std::ios::trunc);
  if (!csv_) {
    throw std::runtime_error("ResultsStore: cannot open '" + csv_path_ +
                             "' for writing: " + std::strerror(errno));
  }

  jsonl_ << header_line(header_).dump(-1) << '\n';
  std::vector<std::string> csv_header = {"cell"};
  for (std::string& column : header_.csv_header()) {
    csv_header.push_back(std::move(column));
  }
  csv_ << join_csv(csv_header);

  writer_ = std::thread(&ResultsStore::writer_loop, this);
}

ResultsStore::~ResultsStore() {
  // Best-effort shutdown for the unwind path; errors were either already
  // rethrown from push()/finish() or are not worth terminating over now.
  try {
    finish();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

void ResultsStore::push(std::size_t cell, sweep::RunSummary row) {
  std::unique_lock<std::mutex> lock(mutex_);
  space_available_.wait(lock, [this] {
    return queue_.size() < options_.buffer_capacity || failed_;
  });
  if (failed_) std::rethrow_exception(error_);
  CM_EXPECTS(!done_);  // push after finish() is a caller bug
  queue_.push_back(Row{cell, std::move(row)});
  peak_buffered_ = std::max(peak_buffered_, queue_.size());
  rows_available_.notify_one();
}

std::function<void(std::size_t, sweep::RunSummary)> ResultsStore::sink() {
  return [this](std::size_t cell, sweep::RunSummary row) {
    push(cell, std::move(row));
  };
}

void ResultsStore::writer_loop() {
  for (;;) {
    std::vector<Row> batch;
    bool failed = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      rows_available_.wait(lock, [this] { return !queue_.empty() || done_; });
      if (queue_.empty() && done_) return;
      const std::size_t take = std::min(options_.batch_rows, queue_.size());
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      failed = failed_;
    }
    space_available_.notify_all();

    if (failed) continue;  // drain-and-discard so producers unblock

    std::string jsonl_chunk;
    std::string csv_chunk;
    for (const Row& row : batch) {
      util::JsonValue entry = util::JsonValue::object();
      entry["cell"] = static_cast<double>(row.cell);
      const util::JsonValue fields = row.summary.to_json();
      for (const auto& [key, value] : fields.members()) entry[key] = value;
      jsonl_chunk += entry.dump(-1);
      jsonl_chunk += '\n';

      std::vector<std::string> csv_fields = {std::to_string(row.cell)};
      for (std::string& field : header_.csv_row(row.summary)) {
        csv_fields.push_back(std::move(field));
      }
      csv_chunk += join_csv(csv_fields);
    }
    jsonl_ << jsonl_chunk;
    csv_ << csv_chunk;
    if (!jsonl_ || !csv_) {
      std::lock_guard<std::mutex> lock(mutex_);
      fail_locked(std::make_exception_ptr(std::runtime_error(
          "ResultsStore: write to '" + (!jsonl_ ? jsonl_path_ : csv_path_) +
          "' failed: " + std::strerror(errno))));
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      rows_written_ += batch.size();
    }
  }
}

void ResultsStore::fail_locked(std::exception_ptr error) {
  if (!failed_) {
    failed_ = true;
    error_ = std::move(error);
  }
  queue_.clear();
  space_available_.notify_all();
}

void ResultsStore::finish() {
  if (!finished_) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    rows_available_.notify_all();
    space_available_.notify_all();
    if (writer_.joinable()) writer_.join();
    jsonl_.flush();
    csv_.flush();
    if ((!jsonl_ || !csv_) && !failed_) {
      failed_ = true;
      error_ = std::make_exception_ptr(std::runtime_error(
          "ResultsStore: flush of '" + (!jsonl_ ? jsonl_path_ : csv_path_) +
          "' failed: " + std::strerror(errno)));
    }
    jsonl_.close();
    csv_.close();
    finished_ = true;
  }
  if (failed_) std::rethrow_exception(error_);
}

sweep::SweepResult ResultsStore::finalize() {
  finish();

  std::ifstream in(jsonl_path_);
  if (!in) {
    throw std::runtime_error("ResultsStore: cannot read back '" + jsonl_path_ +
                             "': " + std::strerror(errno));
  }
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("ResultsStore: '" + jsonl_path_ +
                             "' is empty — no header line");
  }
  const util::JsonValue header = util::JsonValue::parse(line);
  CM_ENSURES(header.at("type").as_string() == "header");
  CM_ENSURES(header.at("spec_hash").as_string() == header_.spec_hash);

  std::vector<std::pair<std::size_t, sweep::RunSummary>> rows;
  rows.reserve(expected_cells_.size());
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const util::JsonValue entry = util::JsonValue::parse(line);
    const auto cell = static_cast<std::size_t>(entry.at("cell").as_number());
    rows.emplace_back(cell,
                      sweep::RunSummary::from_json(entry, header_.scenario));
  }

  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (rows.size() != expected_cells_.size()) {
    throw std::runtime_error(
        "ResultsStore: '" + jsonl_path_ + "' holds " +
        std::to_string(rows.size()) + " rows but the sweep expected " +
        std::to_string(expected_cells_.size()) +
        " — was the sweep interrupted?");
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].first != expected_cells_[i]) {
      throw std::runtime_error(
          "ResultsStore: '" + jsonl_path_ + "' cell sequence broken at row " +
          std::to_string(i) + ": got cell " + std::to_string(rows[i].first) +
          ", expected " + std::to_string(expected_cells_[i]) +
          " (duplicate or missing cell)");
    }
  }

  sweep::SweepResult result = header_;
  result.runs.reserve(rows.size());
  for (auto& [cell, summary] : rows) result.runs.push_back(std::move(summary));
  if (result.shard_count > 1) result.cell_indices = expected_cells_;
  return result;
}

std::size_t ResultsStore::rows_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rows_written_;
}

std::size_t ResultsStore::peak_buffered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_buffered_;
}

}  // namespace cloudmedia::store
