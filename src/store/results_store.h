#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sweep/run_summary.h"
#include "sweep/sweep_runner.h"

namespace cloudmedia::store {

/// Knobs for one ResultsStore. `base` is the output stem: the store
/// streams `<base>.jsonl` (one row per line, plus a header line) and
/// `<base>.stream.csv` (completion-order rows with a leading `cell`
/// column) while the sweep runs.
struct StoreOptions {
  std::string base;
  /// Rows the producer side may buffer before push() blocks — the
  /// backpressure bound that keeps a sweep's resident row count flat no
  /// matter how large the grid is.
  std::size_t buffer_capacity = 256;
  /// Rows the writer drains per wake-up (amortizes lock traffic).
  std::size_t batch_rows = 64;
};

/// Asynchronous producer/consumer results writer — the streaming
/// alternative to buffering a whole SweepResult in RAM. Worker threads
/// push completed RunSummary rows into a bounded, lock-guarded buffer; a
/// dedicated writer thread drains batches to disk (CSV + JSONL) as the
/// sweep runs. Rows land on disk in completion order, each tagged with
/// its global grid cell, so finalize() can reassemble the deterministic
/// grid-order output afterwards without the sweep ever holding more than
/// `buffer_capacity` rows resident.
///
///   store::ResultsStore store({.base = "results/big"}, spec);
///   sweep::SweepSpec streaming = spec;
///   streaming.sink = store.sink();
///   (void)sweep::SweepRunner::run(streaming);   // runs come back empty
///   sweep::SweepResult result = store.finalize();  // grid order, exact
///
/// finalize()'s result serializes byte-identically to a buffered
/// SweepRunner::run of the same spec — the property the golden gate and
/// the shard --merge path stand on.
class ResultsStore {
 public:
  /// Opens the output files (creating missing parent directories — throws
  /// std::runtime_error naming the path when it cannot), writes the JSONL
  /// and CSV headers, and starts the writer thread. The spec provides the
  /// header metadata (scenario, seed, grid, shard, spec hash) and the
  /// expected cell set.
  ResultsStore(StoreOptions options, const sweep::SweepSpec& spec);
  ~ResultsStore();

  ResultsStore(const ResultsStore&) = delete;
  ResultsStore& operator=(const ResultsStore&) = delete;

  /// Hand one completed row to the writer. Thread-safe; blocks while the
  /// buffer is full. Rethrows the writer's error if the writer thread has
  /// failed (e.g. disk full), so the sweep aborts instead of silently
  /// dropping rows.
  void push(std::size_t cell, sweep::RunSummary row);

  /// Adapter for SweepSpec::sink.
  [[nodiscard]] std::function<void(std::size_t, sweep::RunSummary)> sink();

  /// Drain the buffer, stop and join the writer, flush and close the
  /// files. Idempotent. Rethrows any writer-side I/O error.
  void finish();

  /// After finish(): read `<base>.jsonl` back, verify every expected cell
  /// arrived exactly once, and reassemble the rows in global grid order.
  /// Only scalar rows are ever resident — series never existed here.
  [[nodiscard]] sweep::SweepResult finalize();

  [[nodiscard]] const std::string& jsonl_path() const noexcept {
    return jsonl_path_;
  }
  [[nodiscard]] const std::string& stream_csv_path() const noexcept {
    return csv_path_;
  }
  /// Rows the writer has committed to disk so far.
  [[nodiscard]] std::size_t rows_written() const;
  /// High-water mark of rows buffered at once (<= buffer_capacity).
  [[nodiscard]] std::size_t peak_buffered() const;

 private:
  struct Row {
    std::size_t cell = 0;
    sweep::RunSummary summary;
  };

  void writer_loop();
  void fail_locked(std::exception_ptr error);

  StoreOptions options_;
  sweep::SweepResult header_;  ///< runs empty; metadata + csv_row helper
  std::vector<std::size_t> expected_cells_;
  std::string jsonl_path_;
  std::string csv_path_;
  std::ofstream jsonl_;
  std::ofstream csv_;

  mutable std::mutex mutex_;
  std::condition_variable rows_available_;
  std::condition_variable space_available_;
  std::deque<Row> queue_;
  std::exception_ptr error_;
  bool failed_ = false;
  bool done_ = false;
  bool finished_ = false;
  std::size_t rows_written_ = 0;
  std::size_t peak_buffered_ = 0;
  std::thread writer_;
};

}  // namespace cloudmedia::store
