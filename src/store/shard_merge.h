#pragma once

#include <string>
#include <vector>

#include "sweep/run_summary.h"
#include "util/json.h"

namespace cloudmedia::store {

/// Stitch the N shard outputs of one logical sweep (SweepResult::to_json
/// documents produced with `--shard=k/N`) back into the unsharded result.
/// Because per-run seeds derive only from (base_seed, workload
/// coordinates), the merged result serializes byte-identically to a
/// single-process run of the same spec — `cmp` against a goldens/ snapshot
/// is the intended verification.
///
/// Validates before stitching and throws util::PreconditionError with a
/// teaching message when the inputs are not the complete shard set of one
/// sweep: a document without a shard header, mismatched scenario / seed /
/// spec hash / grid across documents, duplicate or missing shard indices,
/// and per-shard cell sequences that do not match the deterministic k/N
/// partition. `labels` names each document in errors (file paths when
/// merging files); it may be empty or shorter than `docs`.
[[nodiscard]] sweep::SweepResult merge_shards(
    const std::vector<util::JsonValue>& docs,
    const std::vector<std::string>& labels = {});

/// merge_shards() over files written by `tool_sweep --shard=k/N --out=...`,
/// labelled by path.
[[nodiscard]] sweep::SweepResult merge_shard_files(
    const std::vector<std::string>& paths);

}  // namespace cloudmedia::store
