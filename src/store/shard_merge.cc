#include "store/shard_merge.h"

#include <utility>

#include "sweep/sweep_runner.h"
#include "util/check.h"

namespace cloudmedia::store {

namespace {

std::string doc_label(const std::vector<std::string>& labels, std::size_t i) {
  if (i < labels.size()) return "'" + labels[i] + "'";
  return "shard document #" + std::to_string(i);
}

[[noreturn]] void fail(const std::string& message) {
  throw util::PreconditionError("--merge: " + message);
}

bool axes_equal(const std::vector<sweep::ParamAxis>& a,
                const std::vector<sweep::ParamAxis>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name || a[i].values != b[i].values) return false;
  }
  return true;
}

}  // namespace

sweep::SweepResult merge_shards(const std::vector<util::JsonValue>& docs,
                                const std::vector<std::string>& labels) {
  if (docs.empty()) fail("no shard documents given");

  std::vector<sweep::SweepResult> shards;
  shards.reserve(docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    sweep::SweepResult shard;
    try {
      shard = sweep::SweepResult::from_json(docs[i]);
    } catch (const std::exception& e) {
      fail(doc_label(labels, i) +
           " is not a sweep output document: " + e.what());
    }
    if (shard.shard_count <= 1) {
      fail(doc_label(labels, i) +
           " has no shard header — it was not produced with "
           "tool_sweep --shard=k/N, so there is nothing to stitch "
           "(an unsharded output is already complete)");
    }
    shards.push_back(std::move(shard));
  }

  const sweep::SweepResult& first = shards.front();
  const std::size_t count = first.shard_count;
  for (std::size_t i = 1; i < shards.size(); ++i) {
    const sweep::SweepResult& s = shards[i];
    const std::string label = doc_label(labels, i);
    const std::string against = doc_label(labels, 0);
    if (s.scenario != first.scenario) {
      fail(label + " ran scenario '" + s.scenario + "' but " + against +
           " ran '" + first.scenario +
           "' — shards of one sweep share a scenario");
    }
    if (s.base_seed != first.base_seed) {
      fail(label + " used base seed " + std::to_string(s.base_seed) + " but " +
           against + " used " + std::to_string(first.base_seed) +
           " — merging different seeds would mix different workloads");
    }
    if (!axes_equal(s.axes, first.axes)) {
      fail(label + " swept a different grid than " + against +
           " — shards must partition one identical grid");
    }
    if (s.shard_count != count || s.total_cells != first.total_cells) {
      fail(label + " is shard " + std::to_string(s.shard_index) + "/" +
           std::to_string(s.shard_count) + " of " +
           std::to_string(s.total_cells) + " cells but " + against +
           " is shard " + std::to_string(first.shard_index) + "/" +
           std::to_string(count) + " of " +
           std::to_string(first.total_cells) +
           " — every shard must come from the same k/N split");
    }
    if (s.spec_hash != first.spec_hash) {
      fail(label + " has spec hash " + s.spec_hash + " but " + against +
           " has " + first.spec_hash +
           " — the horizon or another spec field differs between the runs");
    }
  }

  if (shards.size() != count) {
    fail("got " + std::to_string(shards.size()) + " documents for a " +
         std::to_string(count) + "-way shard split — pass exactly one "
         "output per shard k = 0.." + std::to_string(count - 1));
  }
  std::vector<const sweep::SweepResult*> by_index(count, nullptr);
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const std::size_t k = shards[i].shard_index;
    CM_EXPECTS(k < count);  // from_json admits only what to_json wrote
    if (by_index[k] != nullptr) {
      fail("shard " + std::to_string(k) + "/" + std::to_string(count) +
           " appears more than once (" + doc_label(labels, i) + ")");
    }
    by_index[k] = &shards[i];
  }

  sweep::SweepResult merged;
  merged.scenario = first.scenario;
  merged.base_seed = first.base_seed;
  merged.axes = first.axes;
  merged.total_cells = first.total_cells;
  merged.spec_hash = first.spec_hash;
  merged.runs.resize(first.total_cells);

  for (std::size_t k = 0; k < count; ++k) {
    const sweep::SweepResult& shard = *by_index[k];
    const std::vector<std::size_t> expected = sweep::SweepRunner::shard_cells(
        first.total_cells, sweep::ShardSpec{k, count});
    if (shard.runs.size() != expected.size()) {
      fail("shard " + std::to_string(k) + "/" + std::to_string(count) +
           " holds " + std::to_string(shard.runs.size()) + " runs but owns " +
           std::to_string(expected.size()) +
           " cells — the shard output is truncated or padded");
    }
    for (std::size_t j = 0; j < expected.size(); ++j) {
      if (shard.cell_indices[j] != expected[j]) {
        fail("shard " + std::to_string(k) + "/" + std::to_string(count) +
             " row " + std::to_string(j) + " claims cell " +
             std::to_string(shard.cell_indices[j]) + " but the k/N "
             "partition assigns cell " + std::to_string(expected[j]));
      }
      merged.runs[expected[j]] = shard.runs[j];
    }
  }
  return merged;
}

sweep::SweepResult merge_shard_files(const std::vector<std::string>& paths) {
  std::vector<util::JsonValue> docs;
  docs.reserve(paths.size());
  for (const std::string& path : paths) {
    docs.push_back(util::JsonValue::parse_file(path));
  }
  return merge_shards(docs, paths);
}

}  // namespace cloudmedia::store
