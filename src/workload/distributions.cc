#include "workload/distributions.h"

#include <cmath>

#include "util/check.h"
#include "util/units.h"

namespace cloudmedia::workload {

std::vector<double> zipf_weights(int n, double exponent) {
  CM_EXPECTS(n > 0);
  CM_EXPECTS(exponent >= 0.0);
  std::vector<double> w(static_cast<std::size_t>(n));
  double total = 0.0;
  for (int k = 0; k < n; ++k) {
    w[static_cast<std::size_t>(k)] = 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    total += w[static_cast<std::size_t>(k)];
  }
  for (double& x : w) x /= total;
  return w;
}

BoundedPareto::BoundedPareto(double lower, double upper, double shape)
    : lower_(lower), upper_(upper), shape_(shape) {
  CM_EXPECTS(lower > 0.0);
  CM_EXPECTS(upper > lower);
  CM_EXPECTS(shape > 0.0);
}

double BoundedPareto::sample(util::Rng& rng) const {
  return quantile(rng.uniform());
}

double BoundedPareto::quantile(double u) const {
  // Inverse-CDF of the truncated Pareto:
  //   F(x) = (1 - (L/x)^k) / (1 - (L/H)^k)
  CM_EXPECTS(u >= 0.0 && u < 1.0);
  const double lk = std::pow(lower_, shape_);
  const double hk = std::pow(upper_, shape_);
  const double denom = 1.0 - u * (1.0 - lk / hk);
  return lower_ / std::pow(denom, 1.0 / shape_);
}

double BoundedPareto::mean() const noexcept {
  // E[X] = k L^k (H^{1-k} - L^{1-k}) / ((1-k)(1 - (L/H)^k))   for k != 1
  const double k = shape_;
  const double ratio_k = std::pow(lower_ / upper_, k);
  if (std::abs(k - 1.0) < 1e-12) {
    return lower_ * std::log(upper_ / lower_) / (1.0 - lower_ / upper_);
  }
  const double numer =
      k * std::pow(lower_, k) *
      (std::pow(upper_, 1.0 - k) - std::pow(lower_, 1.0 - k));
  return numer / ((1.0 - k) * (1.0 - ratio_k));
}

BoundedPareto BoundedPareto::scaled_to_mean(double target_mean) const {
  CM_EXPECTS(target_mean > 0.0);
  const double factor = target_mean / mean();
  return BoundedPareto(lower_ * factor, upper_ * factor, shape_);
}

DiurnalPattern::DiurnalPattern(double base, std::vector<Peak> peaks)
    : base_(base), peaks_(std::move(peaks)) {
  CM_EXPECTS(base >= 0.0);
  for (const Peak& p : peaks_) {
    CM_EXPECTS(p.hour >= 0.0 && p.hour < 24.0);
    CM_EXPECTS(p.amplitude >= 0.0);
    CM_EXPECTS(p.width > 0.0);
  }
}

DiurnalPattern DiurnalPattern::paper_default() {
  // Noon and evening flash crowds; amplitudes chosen so the daily mean
  // multiplier is ~1 (base + sum of Gaussian masses / 24 h).
  return DiurnalPattern(0.55, {{12.5, 0.9, 1.5}, {20.5, 1.2, 2.0}});
}

DiurnalPattern DiurnalPattern::flat() { return DiurnalPattern(1.0, {}); }

DiurnalPattern DiurnalPattern::shifted(double hours) const {
  std::vector<Peak> moved = peaks_;
  for (Peak& p : moved) {
    p.hour = std::fmod(std::fmod(p.hour + hours, 24.0) + 24.0, 24.0);
  }
  return DiurnalPattern(base_, std::move(moved));
}

double DiurnalPattern::multiplier(double t) const noexcept {
  const double hour = std::fmod(t / 3600.0, 24.0);
  double m = base_;
  for (const Peak& p : peaks_) {
    // Evaluate the bump at the nearest periodic image of its center.
    double d = std::abs(hour - p.hour);
    d = std::min(d, 24.0 - d);
    m += p.amplitude * std::exp(-0.5 * (d / p.width) * (d / p.width));
  }
  return m;
}

double DiurnalPattern::max_multiplier() const noexcept {
  double best = base_;
  for (int minute = 0; minute < 24 * 60; ++minute) {
    best = std::max(best, multiplier(minute * 60.0));
  }
  return best;
}

double DiurnalPattern::mean_multiplier() const {
  double acc = 0.0;
  const int samples = 24 * 60;
  for (int minute = 0; minute < samples; ++minute) acc += multiplier(minute * 60.0);
  return acc / samples;
}

PoissonArrivals::PoissonArrivals(std::function<double(double)> rate,
                                 double max_rate, util::Rng rng)
    : rate_(std::move(rate)), max_rate_(max_rate), rng_(rng) {
  CM_EXPECTS(rate_ != nullptr);
  CM_EXPECTS(max_rate_ > 0.0);
}

void PoissonArrivals::refill() {
  // Chunk size balances batching gains against over-drawing: a refill is
  // ~one cache line of tight Rng work, and the buffer is private state of
  // this stream, so pre-drawing never perturbs any other consumer.
  constexpr std::size_t kBatch = 32;
  draws_.resize(kBatch);
  for (Draw& draw : draws_) {
    // Exactly the unbatched loop's stream order: gap, accept, gap, accept…
    draw.gap = rng_.exponential(1.0 / max_rate_);
    draw.accept = rng_.uniform();
  }
  cursor_ = 0;
}

double PoissonArrivals::next_after(double t) {
  // Ogata thinning: candidate gaps at the envelope rate, accepted with
  // probability rate(t)/max_rate.
  double candidate = t;
  for (;;) {
    if (cursor_ == draws_.size()) refill();
    const Draw draw = draws_[cursor_++];
    candidate += draw.gap;
    const double r = rate_(candidate);
    CM_ENSURES(r <= max_rate_ * (1.0 + 1e-9));
    if (r > 0.0 && draw.accept * max_rate_ < r) return candidate;
  }
}

}  // namespace cloudmedia::workload
