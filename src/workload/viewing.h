#pragma once

#include <optional>
#include <vector>

#include "util/matrix.h"
#include "util/rng.h"

namespace cloudmedia::workload {

/// Parameters of the per-chunk viewing behaviour that induces the paper's
/// chunk transfer probability matrix P (Sec. III-B / IV-A).
///
/// After finishing chunk i a viewer:
///   - leaves the channel with probability `leave_prob`;
///   - seeks to a uniformly random other chunk with probability `jump_prob`
///     (the paper's VCR operations; with T0 = 5 min chunks and a mean
///     15-minute inter-jump interval, jump_prob ≈ 1 - e^{-1/3} ≈ 0.28);
///   - otherwise continues to chunk i+1 (leaving after the last chunk).
/// A fraction `alpha` of arriving users starts at chunk 1; the rest start
/// uniformly across the other chunks (the paper's α).
struct ViewingBehavior {
  double alpha = 0.6;
  double jump_prob = 0.28;
  double leave_prob = 0.12;

  void validate() const;

  /// The J×J chunk transfer matrix P with P(i,j) = P_ij. Rows are
  /// sub-stochastic: 1 - Σ_j P_ij is the leave probability from chunk i.
  [[nodiscard]] util::Matrix transfer_matrix(int num_chunks) const;

  /// External entry distribution over chunks: alpha at chunk 0, the rest
  /// uniform (paper Sec. IV-A).
  [[nodiscard]] std::vector<double> entry_distribution(int num_chunks) const;

  /// Sample the chunk watched after `chunk`; nullopt means the user leaves.
  [[nodiscard]] std::optional<int> sample_next(int chunk, int num_chunks,
                                               util::Rng& rng) const;

  /// Sample the first chunk of a session.
  [[nodiscard]] int sample_entry(int num_chunks, util::Rng& rng) const;
};

/// A fully pre-determined user session: the chunks the user will watch, in
/// order. Sessions are drawn from per-user derived RNG streams so the same
/// (seed, user index) always yields the same walk — this is what lets us
/// replay identical workloads against different provisioning systems.
struct SessionScript {
  int channel = 0;
  double uplink = 0.0;          ///< peer upload capacity, bytes/s
  std::vector<int> chunks;      ///< non-empty chunk walk
};

/// Generates session scripts from a behaviour model.
class SessionGenerator {
 public:
  /// `max_chunks` bounds pathological walks (jump loops); the geometric
  /// leave probability makes hitting the bound astronomically unlikely.
  SessionGenerator(ViewingBehavior behavior, int num_chunks,
                   int max_chunks = 1000);

  [[nodiscard]] std::vector<int> sample_walk(util::Rng& rng) const;

  [[nodiscard]] const ViewingBehavior& behavior() const noexcept { return behavior_; }
  [[nodiscard]] int num_chunks() const noexcept { return num_chunks_; }

 private:
  ViewingBehavior behavior_;
  int num_chunks_;
  int max_chunks_;
};

}  // namespace cloudmedia::workload
