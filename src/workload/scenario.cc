#include "workload/scenario.h"

#include <cmath>

#include "util/check.h"
#include "util/matrix.h"

namespace cloudmedia::workload {

namespace {
// RNG stream purposes; arbitrary distinct constants.
constexpr std::uint64_t kPurposeArrivals = 0xA771;
constexpr std::uint64_t kPurposeSession = 0x5E55;
constexpr std::uint64_t kPurposeCohort = 0xC040;

BoundedPareto make_uplink(const WorkloadConfig& cfg) {
  BoundedPareto raw(cfg.uplink_lower, cfg.uplink_upper, cfg.uplink_shape);
  if (cfg.uplink_mean_ratio <= 0.0) return raw;
  return raw.scaled_to_mean(cfg.uplink_mean_ratio * cfg.streaming_rate);
}
}  // namespace

void WorkloadConfig::validate() const {
  CM_EXPECTS(num_channels >= 1);
  CM_EXPECTS(chunks_per_video >= 1);
  CM_EXPECTS(zipf_exponent >= 0.0);
  CM_EXPECTS(total_arrival_rate > 0.0);
  CM_EXPECTS(uplink_lower > 0.0 && uplink_upper > uplink_lower);
  CM_EXPECTS(uplink_shape > 0.0);
  CM_EXPECTS(streaming_rate > 0.0);
  CM_EXPECTS(refresh_period_hours >= 0.0);
  behavior.validate();
}

Workload::Workload(WorkloadConfig config, std::uint64_t seed,
                   double envelope_headroom)
    : config_(config),
      root_(seed),
      envelope_headroom_(envelope_headroom),
      weights_(zipf_weights(config.num_channels, config.zipf_exponent)),
      uplink_(make_uplink(config)),
      session_gen_(config.behavior, config.chunks_per_video) {
  config_.validate();
  CM_EXPECTS(envelope_headroom >= 1.0);
}

void Workload::set_config(const WorkloadConfig& config) {
  config.validate();
  CM_EXPECTS(config.num_channels == config_.num_channels);
  CM_EXPECTS(config.chunks_per_video == config_.chunks_per_video);
  CM_EXPECTS(config.streaming_rate == config_.streaming_rate);
  config_ = config;
  weights_ = zipf_weights(config.num_channels, config.zipf_exponent);
  uplink_ = make_uplink(config);
  session_gen_ = SessionGenerator(config.behavior, config.chunks_per_video);
}

double Workload::channel_weight_at(int channel, double t) const {
  CM_EXPECTS(channel >= 0 && channel < config_.num_channels);
  if (config_.refresh_period_hours <= 0.0 || config_.refresh_shift == 0) {
    return weights_[static_cast<std::size_t>(channel)];
  }
  // Epoch e rotates channel c onto rank (c + e*shift) mod n. Total arrival
  // rate is conserved (the weights are a permutation of themselves), only
  // who is popular changes.
  const auto epoch = static_cast<long long>(
      std::floor(t / (config_.refresh_period_hours * 3600.0)));
  const auto n = static_cast<long long>(config_.num_channels);
  long long rank = (channel + epoch * config_.refresh_shift) % n;
  if (rank < 0) rank += n;
  return weights_[static_cast<std::size_t>(rank)];
}

double Workload::channel_rate(int channel, double t) const {
  return config_.total_arrival_rate * channel_weight_at(channel, t) *
         config_.diurnal.multiplier(t);
}

double Workload::channel_max_rate(int channel) const {
  CM_EXPECTS(channel >= 0 && channel < config_.num_channels);
  // Under a refresh the channel can rotate onto any rank, so the top Zipf
  // weight (rank 0; zipf_weights sorts descending) is the tight bound.
  const bool refreshing =
      config_.refresh_period_hours > 0.0 && config_.refresh_shift != 0;
  const double weight =
      refreshing ? weights_[0] : weights_[static_cast<std::size_t>(channel)];
  return config_.total_arrival_rate * weight *
         config_.diurnal.max_multiplier();
}

PoissonArrivals Workload::make_arrivals(int channel) const {
  CM_EXPECTS(channel >= 0 && channel < config_.num_channels);
  return PoissonArrivals(
      [this, channel](double t) { return channel_rate(channel, t); },
      channel_max_rate(channel) * envelope_headroom_,
      root_.derive(kPurposeArrivals, static_cast<std::uint64_t>(channel)));
}

CohortArrivals Workload::make_cohort_arrivals(int channel,
                                              double window) const {
  CM_EXPECTS(channel >= 0 && channel < config_.num_channels);
  return CohortArrivals(
      [this, channel](double t) { return channel_rate(channel, t); }, window,
      root_.derive(kPurposeCohort, static_cast<std::uint64_t>(channel)));
}

SessionScript Workload::make_session(int channel,
                                     std::uint64_t user_index) const {
  CM_EXPECTS(channel >= 0 && channel < config_.num_channels);
  // One derived stream per (channel, user ordinal): the walk and uplink of
  // the k-th arrival to a channel do not depend on anything else.
  util::Rng rng = root_.derive(
      kPurposeSession,
      (static_cast<std::uint64_t>(channel) << 40) ^ user_index);
  SessionScript script;
  script.channel = channel;
  script.chunks = session_gen_.sample_walk(rng);
  script.uplink = uplink_.sample(rng);
  return script;
}

double Workload::expected_session_chunks() const {
  const int j = config_.chunks_per_video;
  const util::Matrix p = config_.behavior.transfer_matrix(j);
  const std::vector<double> entry = config_.behavior.entry_distribution(j);
  // Expected visits v solves v = entry + Pᵀ v  (absorbing-chain identity).
  util::Matrix a = util::Matrix::identity(static_cast<std::size_t>(j));
  const util::Matrix pt = p.transpose();
  a -= pt;
  std::vector<double> visits = util::solve_linear_system(a, entry);
  double total = 0.0;
  for (double v : visits) total += v;
  return total;
}

}  // namespace cloudmedia::workload
