#include "workload/cohort.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cloudmedia::workload {

long long sample_poisson(util::Rng& rng, double mean) {
  CM_EXPECTS(mean >= 0.0 && std::isfinite(mean));
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    // Knuth: count uniforms until their product drops below e^-mean.
    const double limit = std::exp(-mean);
    long long k = 0;
    double prod = rng.uniform();
    while (prod >= limit) {
      ++k;
      prod *= rng.uniform();
    }
    return k;
  }
  // Above the cutoff the normal approximation's error (O(1/sqrt(mean))) is
  // far inside the cohort engine's fluid tolerance, and it stays one
  // normal draw no matter how large the mean — the property the
  // 10M-viewer bench depends on.
  return std::llround(std::max(0.0, rng.normal(mean, std::sqrt(mean))));
}

CohortArrivals::CohortArrivals(std::function<double(double)> rate,
                               double window, util::Rng rng)
    : rate_(std::move(rate)), window_(window), rng_(rng) {
  CM_EXPECTS(rate_ != nullptr);
  CM_EXPECTS(window_ > 0.0);
}

double CohortArrivals::window_mean(double t) const {
  constexpr double kStep = 60.0;
  double acc = 0.0;
  int n = 0;
  for (double s = t; s < t + window_; s += kStep) {
    acc += rate_(s);
    ++n;
  }
  const double mean_rate = n > 0 ? acc / n : rate_(t);
  return mean_rate * window_;
}

long long CohortArrivals::sample_count(double t) {
  return sample_poisson(rng_, window_mean(t));
}

}  // namespace cloudmedia::workload
