#pragma once

#include <functional>

#include "util/rng.h"

namespace cloudmedia::workload {

/// Poisson sample with the given mean, fully specified (no
/// std::poisson_distribution, whose algorithm is implementation-defined):
/// Knuth's product-of-uniforms below mean 64, a rounded normal
/// approximation above it. Like the Rng samplers, depends only on IEEE-754
/// arithmetic and libm exp/log/sqrt rounding.
[[nodiscard]] long long sample_poisson(util::Rng& rng, double mean);

/// Arrival batching for the cohort engine: instead of drawing every viewer's
/// arrival instant (the discrete PoissonArrivals stream), draw the *count*
/// of arrivals to one channel per fixed window — one Poisson sample per
/// (channel, window), which is what makes 10M-viewer populations cheap.
///
/// Deterministic: the count stream comes from a derived Rng keyed by the
/// channel, and the window mean integrates the live channel rate, so two
/// runs over the same Workload seed see identical cohort sizes.
class CohortArrivals {
 public:
  /// `rate(t)`: instantaneous channel arrival rate (users/s), read live so
  /// mid-run config mutations show up in later windows.
  CohortArrivals(std::function<double(double)> rate, double window,
                 util::Rng rng);

  /// Expected arrivals in [t, t + window): the rate integrated at 60 s
  /// resolution (matching the Clairvoyant policy's quadrature).
  [[nodiscard]] double window_mean(double t) const;

  /// Draw the arrival count for the window starting at `t`. Consumes the
  /// stream — call once per window, in window order.
  [[nodiscard]] long long sample_count(double t);

  [[nodiscard]] double window() const noexcept { return window_; }

 private:
  std::function<double(double)> rate_;
  double window_;
  util::Rng rng_;
};

}  // namespace cloudmedia::workload
