#pragma once

#include <cstdint>
#include <vector>

#include "workload/cohort.h"
#include "workload/distributions.h"
#include "workload/viewing.h"

namespace cloudmedia::workload {

/// Everything that defines the user-side workload of a multi-channel VoD
/// deployment, with defaults from the paper's experimental settings
/// (Sec. VI-A): 20 Zipf-popular channels, ~2500 average concurrent users,
/// diurnal arrivals with two flash crowds, 15-minute mean seek interval,
/// bounded-Pareto peer uplinks.
struct WorkloadConfig {
  int num_channels = 20;
  int chunks_per_video = 20;
  double zipf_exponent = 1.0;
  /// Aggregate external arrival rate (users/s) when the diurnal multiplier
  /// is 1. With the default behaviour (mean session ≈ 8 chunks ≈ 40 min)
  /// 1.0 user/s sustains ≈ 2400 concurrent users, the paper's scale.
  double total_arrival_rate = 1.0;
  DiurnalPattern diurnal = DiurnalPattern::paper_default();
  ViewingBehavior behavior;
  /// Peer uplink distribution (bytes/s). Paper: Pareto on [180 kbps,
  /// 10 Mbps], shape 3.
  double uplink_lower = 22'500.0;    // 180 kbps
  double uplink_upper = 1'250'000.0; // 10 Mbps
  double uplink_shape = 3.0;
  /// If > 0, rescale the uplink distribution so its mean equals
  /// `uplink_mean_ratio * streaming_rate`. This is the Fig.-11 knob; see
  /// DESIGN.md for why the paper's literal Pareto parameters are rescaled.
  double uplink_mean_ratio = 1.0;
  double streaming_rate = 50'000.0;  // bytes/s; r = 400 kbps
  /// Catalog-refresh reshuffle (the catalog_refresh scenario): every
  /// `refresh_period_hours` of simulated time the channel-to-popularity-
  /// rank mapping rotates by `refresh_shift` ranks, so a channel's arrival
  /// rate jumps to another rank's Zipf weight and demand history predicts
  /// the wrong channels. 0 (the default) disables the reshuffle and keeps
  /// the static mapping — and the exact RNG stream — of the paper setup.
  double refresh_period_hours = 0.0;
  int refresh_shift = 0;

  void validate() const;
};

/// Deterministic workload: per-channel arrival streams and per-user session
/// scripts, all derived from (seed, purpose, entity id) RNG streams so two
/// systems consuming the same Workload observe identical users.
class Workload {
 public:
  /// `envelope_headroom` (>= 1) multiplies the thinning envelope handed to
  /// make_arrivals(). The default 1.0 is bit-neutral (x * 1.0 == x). Pass
  /// more when set_config() will raise arrival rates mid-run: the headroom
  /// must cover the highest channel_max_rate any future config reaches,
  /// relative to this construction-time config (the experiment runner
  /// computes it by dry-running the timeline).
  explicit Workload(WorkloadConfig config, std::uint64_t seed,
                    double envelope_headroom = 1.0);

  /// Replace the workload shape mid-run: arrival pattern, viewing
  /// behaviour, catalog popularity knobs, peer uplinks. Streams derived so
  /// far are untouched (the root RNG never changes); rate lambdas handed
  /// out by make_arrivals() read the new config live. Structural fields
  /// (num_channels, chunks_per_video, streaming_rate) are frozen — the
  /// running system sized its pools and VM menus from them at t=0.
  void set_config(const WorkloadConfig& config);

  [[nodiscard]] const WorkloadConfig& config() const noexcept { return config_; }
  [[nodiscard]] int num_channels() const noexcept { return config_.num_channels; }
  [[nodiscard]] const std::vector<double>& channel_weights() const noexcept {
    return weights_;
  }

  /// Popularity weight of channel c at time t: the static Zipf weight, or
  /// — under a catalog refresh — the weight of the rank the channel
  /// currently occupies in the rotating mapping.
  [[nodiscard]] double channel_weight_at(int channel, double t) const;
  /// Instantaneous external arrival rate of channel c at time t.
  [[nodiscard]] double channel_rate(int channel, double t) const;
  /// Envelope for thinning (an upper bound on channel_rate over all t; the
  /// top Zipf weight when a catalog refresh can rotate the channel there).
  [[nodiscard]] double channel_max_rate(int channel) const;

  /// Arrival stream for a channel (independent derived RNG).
  [[nodiscard]] PoissonArrivals make_arrivals(int channel) const;

  /// Windowed arrival-count stream for the cohort engine (independent
  /// derived RNG — a different purpose than make_arrivals, so the two
  /// engines never share draws).
  [[nodiscard]] CohortArrivals make_cohort_arrivals(int channel,
                                                    double window) const;

  /// Deterministic session for the `user_index`-th arrival of `channel`.
  [[nodiscard]] SessionScript make_session(int channel,
                                           std::uint64_t user_index) const;

  [[nodiscard]] const BoundedPareto& uplink_distribution() const noexcept {
    return uplink_;
  }

  /// Expected chunks watched per session, from the absorbing chain
  /// E[visits] = entryᵀ (I − P)^{-1} 1. Used for calibration and tests.
  [[nodiscard]] double expected_session_chunks() const;

 private:
  WorkloadConfig config_;
  util::Rng root_;
  double envelope_headroom_;
  std::vector<double> weights_;
  BoundedPareto uplink_;
  SessionGenerator session_gen_;
};

}  // namespace cloudmedia::workload
