#pragma once

#include <cstdint>
#include <vector>

#include "workload/distributions.h"
#include "workload/viewing.h"

namespace cloudmedia::workload {

/// Everything that defines the user-side workload of a multi-channel VoD
/// deployment, with defaults from the paper's experimental settings
/// (Sec. VI-A): 20 Zipf-popular channels, ~2500 average concurrent users,
/// diurnal arrivals with two flash crowds, 15-minute mean seek interval,
/// bounded-Pareto peer uplinks.
struct WorkloadConfig {
  int num_channels = 20;
  int chunks_per_video = 20;
  double zipf_exponent = 1.0;
  /// Aggregate external arrival rate (users/s) when the diurnal multiplier
  /// is 1. With the default behaviour (mean session ≈ 8 chunks ≈ 40 min)
  /// 1.0 user/s sustains ≈ 2400 concurrent users, the paper's scale.
  double total_arrival_rate = 1.0;
  DiurnalPattern diurnal = DiurnalPattern::paper_default();
  ViewingBehavior behavior;
  /// Peer uplink distribution (bytes/s). Paper: Pareto on [180 kbps,
  /// 10 Mbps], shape 3.
  double uplink_lower = 22'500.0;    // 180 kbps
  double uplink_upper = 1'250'000.0; // 10 Mbps
  double uplink_shape = 3.0;
  /// If > 0, rescale the uplink distribution so its mean equals
  /// `uplink_mean_ratio * streaming_rate`. This is the Fig.-11 knob; see
  /// DESIGN.md for why the paper's literal Pareto parameters are rescaled.
  double uplink_mean_ratio = 1.0;
  double streaming_rate = 50'000.0;  // bytes/s; r = 400 kbps

  void validate() const;
};

/// Deterministic workload: per-channel arrival streams and per-user session
/// scripts, all derived from (seed, purpose, entity id) RNG streams so two
/// systems consuming the same Workload observe identical users.
class Workload {
 public:
  Workload(WorkloadConfig config, std::uint64_t seed);

  [[nodiscard]] const WorkloadConfig& config() const noexcept { return config_; }
  [[nodiscard]] int num_channels() const noexcept { return config_.num_channels; }
  [[nodiscard]] const std::vector<double>& channel_weights() const noexcept {
    return weights_;
  }

  /// Instantaneous external arrival rate of channel c at time t.
  [[nodiscard]] double channel_rate(int channel, double t) const;
  /// Envelope for thinning.
  [[nodiscard]] double channel_max_rate(int channel) const;

  /// Arrival stream for a channel (independent derived RNG).
  [[nodiscard]] PoissonArrivals make_arrivals(int channel) const;

  /// Deterministic session for the `user_index`-th arrival of `channel`.
  [[nodiscard]] SessionScript make_session(int channel,
                                           std::uint64_t user_index) const;

  [[nodiscard]] const BoundedPareto& uplink_distribution() const noexcept {
    return uplink_;
  }

  /// Expected chunks watched per session, from the absorbing chain
  /// E[visits] = entryᵀ (I − P)^{-1} 1. Used for calibration and tests.
  [[nodiscard]] double expected_session_chunks() const;

 private:
  WorkloadConfig config_;
  util::Rng root_;
  std::vector<double> weights_;
  BoundedPareto uplink_;
  SessionGenerator session_gen_;
};

}  // namespace cloudmedia::workload
