#pragma once

#include <functional>
#include <vector>

#include "util/rng.h"

namespace cloudmedia::workload {

/// Zipf-like popularity over `n` ranks: weight(rank k) ∝ 1 / k^exponent,
/// normalized to sum to 1. The paper deploys "20 video channels with
/// different popularities following a Zipf-like distribution" (Sec. VI-A).
[[nodiscard]] std::vector<double> zipf_weights(int n, double exponent);

/// Bounded (truncated) Pareto distribution on [lower, upper] with shape k.
/// The paper draws peer upload capacities from a Pareto distribution within
/// [180 kbps, 10 Mbps] with shape parameter k = 3 (Sec. VI-A).
class BoundedPareto {
 public:
  BoundedPareto(double lower, double upper, double shape);

  [[nodiscard]] double sample(util::Rng& rng) const;
  /// Inverse CDF at u ∈ [0, 1) (sample() draws quantile(U)).
  [[nodiscard]] double quantile(double u) const;
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double lower() const noexcept { return lower_; }
  [[nodiscard]] double upper() const noexcept { return upper_; }
  [[nodiscard]] double shape() const noexcept { return shape_; }

  /// Return the same-shape distribution with both bounds scaled so the mean
  /// equals `target_mean`. Used by the Fig.-11 sweep, which varies the ratio
  /// of mean peer upload to the streaming rate (Sec. VI-D).
  [[nodiscard]] BoundedPareto scaled_to_mean(double target_mean) const;

 private:
  double lower_;
  double upper_;
  double shape_;
};

/// Diurnal arrival-rate multiplier: a baseline plus Gaussian "flash crowd"
/// bumps, periodic over 24 h. The paper's trace has "a daily pattern with
/// two flash crowds around noon and in the evening" (Sec. VI-A).
class DiurnalPattern {
 public:
  struct Peak {
    double hour;       ///< center of the bump, in [0, 24)
    double amplitude;  ///< added multiplier at the center
    double width;      ///< Gaussian sigma, in hours
  };

  DiurnalPattern(double base, std::vector<Peak> peaks);

  /// Two-flash-crowd pattern calibrated so the daily mean multiplier ≈ 1.
  [[nodiscard]] static DiurnalPattern paper_default();
  /// Constant multiplier 1 (for steady-state tests).
  [[nodiscard]] static DiurnalPattern flat();

  /// The same pattern moved `hours` later in the day (peaks wrap modulo
  /// 24 h). A region `hours` west of the reference sees the same crowds
  /// `hours` later in reference time: shifted(-utc_offset).
  [[nodiscard]] DiurnalPattern shifted(double hours) const;

  [[nodiscard]] double base() const noexcept { return base_; }
  [[nodiscard]] const std::vector<Peak>& peaks() const noexcept {
    return peaks_;
  }

  /// Multiplier at absolute time t (seconds); periodic with period 24 h.
  [[nodiscard]] double multiplier(double t) const noexcept;
  /// Maximum multiplier over the day (used as the thinning envelope).
  [[nodiscard]] double max_multiplier() const noexcept;
  /// Mean multiplier over one day (numeric, 1-minute resolution).
  [[nodiscard]] double mean_multiplier() const;

 private:
  double base_;
  std::vector<Peak> peaks_;
};

/// Non-homogeneous Poisson arrival stream via thinning. Deterministic for
/// a given Rng stream regardless of how the caller interleaves other draws.
///
/// Sampling is batched: the (envelope gap, acceptance) draw pairs are
/// pre-drawn from the owned Rng in chunks, in exactly the alternating
/// order the unbatched thinning loop consumed them — every value is the
/// same double from the same stream position, so arrival times are
/// bit-identical while the hot next_after() path reduces to buffer reads
/// plus the (lazy, never pre-evaluated) rate lookup. rate(t) stays lazy on
/// purpose: timed scenario ops may retune the rate function mid-run, and
/// only the *candidate evaluation time* decides what they see.
class PoissonArrivals {
 public:
  /// rate(t) must be <= max_rate for all t; max_rate > 0.
  PoissonArrivals(std::function<double(double)> rate, double max_rate,
                  util::Rng rng);

  /// First arrival strictly after `t`.
  [[nodiscard]] double next_after(double t);

 private:
  /// One thinning iteration's worth of randomness, pre-drawn.
  struct Draw {
    double gap;     ///< exponential envelope inter-candidate gap
    double accept;  ///< uniform acceptance variate
  };

  void refill();

  std::function<double(double)> rate_;
  double max_rate_;
  util::Rng rng_;
  std::vector<Draw> draws_;   ///< pre-drawn chunk (draw-order-preserving)
  std::size_t cursor_ = 0;    ///< next unconsumed entry in draws_
};

}  // namespace cloudmedia::workload
