#include "workload/viewing.h"

#include "util/check.h"

namespace cloudmedia::workload {

void ViewingBehavior::validate() const {
  CM_EXPECTS(alpha >= 0.0 && alpha <= 1.0);
  CM_EXPECTS(jump_prob >= 0.0 && leave_prob >= 0.0);
  CM_EXPECTS(jump_prob + leave_prob <= 1.0);
  CM_EXPECTS(leave_prob > 0.0);  // sessions must terminate
}

util::Matrix ViewingBehavior::transfer_matrix(int num_chunks) const {
  validate();
  CM_EXPECTS(num_chunks >= 1);
  const auto j = static_cast<std::size_t>(num_chunks);
  util::Matrix p(j, j);
  if (num_chunks == 1) return p;  // single chunk: any transition is a leave
  const double jump_each = jump_prob / static_cast<double>(num_chunks - 1);
  for (std::size_t i = 0; i < j; ++i) {
    for (std::size_t k = 0; k < j; ++k) {
      if (k != i) p(i, k) = jump_each;
    }
    if (i + 1 < j) p(i, i + 1) += 1.0 - jump_prob - leave_prob;
  }
  return p;
}

std::vector<double> ViewingBehavior::entry_distribution(int num_chunks) const {
  validate();
  CM_EXPECTS(num_chunks >= 1);
  std::vector<double> d(static_cast<std::size_t>(num_chunks), 0.0);
  if (num_chunks == 1) {
    d[0] = 1.0;
    return d;
  }
  d[0] = alpha;
  const double rest = (1.0 - alpha) / static_cast<double>(num_chunks - 1);
  for (std::size_t i = 1; i < d.size(); ++i) d[i] = rest;
  return d;
}

std::optional<int> ViewingBehavior::sample_next(int chunk, int num_chunks,
                                                util::Rng& rng) const {
  CM_EXPECTS(chunk >= 0 && chunk < num_chunks);
  const double u = rng.uniform();
  if (u < leave_prob) return std::nullopt;
  if (u < leave_prob + jump_prob && num_chunks > 1) {
    int target = rng.uniform_int(0, num_chunks - 2);
    if (target >= chunk) ++target;  // uniform over chunks != current
    return target;
  }
  if (chunk + 1 < num_chunks) return chunk + 1;
  return std::nullopt;  // finished the video
}

int ViewingBehavior::sample_entry(int num_chunks, util::Rng& rng) const {
  CM_EXPECTS(num_chunks >= 1);
  if (num_chunks == 1) return 0;
  if (rng.uniform() < alpha) return 0;
  return rng.uniform_int(1, num_chunks - 1);
}

SessionGenerator::SessionGenerator(ViewingBehavior behavior, int num_chunks,
                                   int max_chunks)
    : behavior_(behavior), num_chunks_(num_chunks), max_chunks_(max_chunks) {
  behavior_.validate();
  CM_EXPECTS(num_chunks >= 1);
  CM_EXPECTS(max_chunks >= 1);
}

std::vector<int> SessionGenerator::sample_walk(util::Rng& rng) const {
  std::vector<int> walk;
  walk.push_back(behavior_.sample_entry(num_chunks_, rng));
  while (static_cast<int>(walk.size()) < max_chunks_) {
    const auto next = behavior_.sample_next(walk.back(), num_chunks_, rng);
    if (!next) break;
    walk.push_back(*next);
  }
  return walk;
}

}  // namespace cloudmedia::workload
