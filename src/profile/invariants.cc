#include "profile/invariants.h"

#include <algorithm>
#include <cmath>

#include "expr/config.h"
#include "expr/runner.h"
#include "sweep/sweep_runner.h"
#include "util/json.h"

namespace cloudmedia::profile {

namespace {

/// The largest (vm, storage) budgets any timeline state of this cell's
/// config can grant: the pre-timeline state, then each timed op applied
/// cumulatively in fire order (mirroring the runner's schedule). Billing
/// admitted under any state must stay under the running maximum.
struct BudgetEnvelope {
  double vm = 0.0;
  double storage = 0.0;
};

BudgetEnvelope budget_envelope(const expr::ExperimentConfig& config) {
  expr::ExperimentConfig baseline = config;
  baseline.timeline.clear();
  BudgetEnvelope cap{baseline.vm_budget_per_hour,
                     baseline.storage_budget_per_hour};
  expr::ExperimentConfig scratch = baseline;
  std::vector<const expr::TimedConfigOp*> ops;
  for (const expr::TimedConfigOp& op : config.timeline) ops.push_back(&op);
  std::stable_sort(ops.begin(), ops.end(),
                   [](const expr::TimedConfigOp* a,
                      const expr::TimedConfigOp* b) {
                     return a->fire_time < b->fire_time;
                   });
  for (const expr::TimedConfigOp* op : ops) {
    op->apply(scratch, baseline);
    cap.vm = std::max(cap.vm, scratch.vm_budget_per_hour);
    cap.storage = std::max(cap.storage, scratch.storage_budget_per_hour);
  }
  // The SLA admits whole-instance rounding of up to one instance per
  // cluster above the vm budget (SlaNegotiator::admit, broker.cc) — the
  // envelope grants billing exactly the allowance admission grants plans.
  // The cluster menus are frozen mid-run, so the allowance is constant.
  for (const core::VmClusterSpec& cluster : config.vm_clusters) {
    cap.vm += cluster.price_per_hour;
  }
  return cap;
}

/// Allow billing to exceed the cap only by floating-point dust.
bool exceeds(double sample, double cap) {
  return sample > cap * (1.0 + 1e-9) + 1e-9;
}

std::string fmt(double v) { return util::format_number(v); }

}  // namespace

std::string InvariantReport::summary() const {
  std::string text;
  for (const InvariantViolation& v : violations) {
    text += "  [" + v.invariant + "] ";
    if (!v.cell.empty()) text += v.cell + ": ";
    text += v.detail + "\n";
  }
  return text;
}

InvariantReport check_profile_invariants(
    const Profile& p, unsigned comparison_threads,
    const sweep::ScenarioCatalog& catalog) {
  InvariantReport report;

  sweep::SweepSpec spec = sweep::SweepSpec::from_profile(p);
  spec.threads = 1;
  spec.keep_results = true;  // the per-cell checks need the series
  const sweep::SweepResult single = sweep::SweepRunner::run(spec, catalog);
  report.cells = single.runs.size();

  const sweep::Scenario scenario = catalog.resolve(p.scenario);
  const std::vector<std::size_t> cells =
      sweep::SweepRunner::shard_cells(spec.grid.num_points(), spec.shard);

  for (std::size_t slot = 0; slot < single.runs.size(); ++slot) {
    const sweep::GridPoint point = spec.grid.point(cells[slot]);
    const std::string cell = point.coords.empty() ? "(single run)"
                                                  : point.label();
    const expr::ExperimentResult& run = single.results[slot];

    // --- conservation: every viewer who arrived either left or is still
    // watching. Exact for the discrete engine; the cohort engine rounds
    // accumulated fluid mass, so give it a couple of viewers plus 10 ppm
    // of slack for the float accumulation.
    const long arrivals = run.metrics.counters.arrivals;
    const long departures = run.metrics.counters.departures;
    const long drift = arrivals - departures - run.final_users;
    const long tolerance =
        run.used_cohort_engine ? std::max<long>(2, arrivals / 100000) : 0;
    if (std::abs(drift) > tolerance) {
      report.violations.push_back(
          {"conservation", cell,
           "arrivals " + std::to_string(arrivals) + " != departures " +
               std::to_string(departures) + " + final_users " +
               std::to_string(run.final_users) + " (drift " +
               std::to_string(drift) + ", tolerance " +
               std::to_string(tolerance) + ")"});
    }

    // --- budget: rebuild this cell's effective config the way run_one
    // does and bound billed $/h by the max budget any timeline state
    // grants.
    expr::ExperimentConfig config = expr::ExperimentConfig::make_default(
        core::StreamingMode::kClientServer);
    scenario.apply(config);
    config.warmup_hours = p.warmup_hours;
    config.measure_hours = p.measure_hours;
    for (const auto& [name, value] : p.overrides) {
      sweep::apply_parameter(config, name, value);
    }
    for (const auto& [name, value] : point.coords) {
      sweep::apply_parameter(config, name, value);
    }
    const BudgetEnvelope cap = budget_envelope(config);
    for (double sample : run.metrics.vm_cost_rate.values()) {
      if (exceeds(sample, cap.vm)) {
        report.violations.push_back(
            {"budget", cell,
             "vm_cost_rate sample " + fmt(sample) + " $/h exceeds the " +
                 fmt(cap.vm) + " $/h budget envelope"});
        break;
      }
    }
    for (double sample : run.metrics.storage_cost_rate.values()) {
      if (exceeds(sample, cap.storage)) {
        report.violations.push_back(
            {"budget", cell,
             "storage_cost_rate sample " + fmt(sample) +
                 " $/h exceeds the " + fmt(cap.storage) +
                 " $/h budget envelope"});
        break;
      }
    }

    // --- quality: a fraction of smooth playback, so finite and in [0, 1].
    for (double sample : run.metrics.quality.values()) {
      if (!std::isfinite(sample) || sample < -1e-12 ||
          sample > 1.0 + 1e-12) {
        report.violations.push_back(
            {"quality", cell,
             "quality sample " + fmt(sample) + " outside [0, 1]"});
        break;
      }
    }
  }

  // --- determinism: the N-thread run must serialize byte-identically to
  // the 1-thread run. Series retention is irrelevant to the serialized
  // forms, so the second pass skips it.
  sweep::SweepSpec parallel = sweep::SweepSpec::from_profile(p);
  parallel.threads = comparison_threads;
  const sweep::SweepResult threaded = sweep::SweepRunner::run(parallel, catalog);
  if (single.to_csv() != threaded.to_csv() ||
      single.to_json().dump(2) != threaded.to_json().dump(2)) {
    report.violations.push_back(
        {"determinism", "",
         "1-thread and " +
             (comparison_threads == 0
                  ? std::string("hardware-thread")
                  : std::to_string(comparison_threads) + "-thread") +
             " runs serialize differently"});
  }

  return report;
}

}  // namespace cloudmedia::profile
