#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sweep/param_grid.h"
#include "sweep/scenario_catalog.h"
#include "sweep/sweep_runner.h"
#include "util/json.h"

namespace cloudmedia::profile {

/// A complete, declarative description of one experiment/sweep — the JSON
/// experiment-profile schema. Everything that defines *what a sweep
/// computes* lives here: the scenario expression (including `@` timeline
/// ops), the grid axes, fixed parameter overrides, seed, horizon, series
/// stride, and shard slice. Execution knobs that cannot change the output
/// bytes (threads, keep_results, customize, sink) deliberately stay out —
/// they belong to SweepSpec, and `tool_sweep --dump-profile` proves the
/// profile side round-trips losslessly: JSON -> Profile ->
/// SweepSpec::from_profile -> Profile::from_spec -> identical JSON.
///
/// The three historical SweepSpec construction paths (golden presets in
/// C++, bench hand-builds, CLI flags) all collapse onto this type: the 19
/// golden presets are committed profiles/*.json embedded at build time,
/// `tool_sweep` builds its spec from a Profile in every mode, the figure
/// benches start from a preset's profile and override declarative fields,
/// and `tool_fuzz` composes random Profiles and checks invariants.
///
/// JSON schema (all keys optional; unknown keys are rejected with a
/// teaching error naming the key and listing the valid ones):
///
///   {
///     "name": "fig04_provisioning",        // preset identity (goldens)
///     "description": "what it guards",
///     "scenario": "regional_outage@45m+recovery@90m",
///     "seed": "42",                         // decimal string or integer
///     "warmup_hours": 0.25,                 // finite, >= 0
///     "measure_hours": 2.75,                // finite, > 0
///     "grid": [                             // axes, registry-validated
///       {"name": "mode", "values": ["cs", "p2p"]}
///     ],
///     "overrides": {"engine": "auto"},      // fixed parameters, applied
///                                           // after the scenario and
///                                           // before the grid point
///     "series_stride": 4,                   // integer >= 1
///     "shard": "0/2"                        // k/N slice of the grid
///   }
///
/// Values inside "grid" and "overrides" may be JSON strings or numbers;
/// numbers canonicalize through util::format_number. to_json() emits the
/// canonical form: keys in the order above, seed as a decimal string, and
/// default-valued optional keys omitted — which is what makes the
/// committed profiles byte-stable under load/dump round trips.
struct Profile {
  std::string name;         ///< optional; required for golden presets
  std::string description;  ///< optional; what the profile is for
  std::string scenario = "baseline_diurnal";
  std::uint64_t seed = 42;
  double warmup_hours = 1.0;
  double measure_hours = 6.0;
  sweep::ParamGrid grid;  ///< empty = one unmodified run
  /// Fixed parameter assignments from the same applier registry as the
  /// grid ("engine", "cohort_threshold", "vm_budget", ...), applied to
  /// every cell after the scenario and before the cell's own coordinates
  /// (so a grid axis wins over an override of the same parameter). Kept
  /// in insertion order for byte-stable serialization.
  std::vector<std::pair<std::string, std::string>> overrides;
  std::size_t series_stride = 1;
  sweep::ShardSpec shard;

  /// Parse and fully validate a profile document. Throws
  /// util::PreconditionError with a teaching message on an unknown key
  /// (naming it and listing the valid keys), a wrong type, an unparsable
  /// seed, a negative/non-finite horizon, a malformed scenario expression
  /// or `@` fire time, an unknown grid parameter or override, an invalid
  /// parameter value, or a bad shard ("k/N" with k < N).
  [[nodiscard]] static Profile from_json(
      const util::JsonValue& doc,
      const sweep::ScenarioCatalog& catalog = sweep::ScenarioCatalog::global());

  /// from_json() over a file; parse errors are rethrown naming the path.
  [[nodiscard]] static Profile load(
      const std::string& path,
      const sweep::ScenarioCatalog& catalog = sweep::ScenarioCatalog::global());

  /// Rebuild the declarative side of a spec (the inverse of
  /// SweepSpec::from_profile). name/description are not spec fields, so
  /// the caller threads them through; execution knobs are dropped.
  [[nodiscard]] static Profile from_spec(const sweep::SweepSpec& spec,
                                         std::string name = {},
                                         std::string description = {});

  /// Canonical JSON (see the schema comment). from_json(to_json()) is the
  /// identity, and dumping a loaded canonical file reproduces its bytes.
  [[nodiscard]] util::JsonValue to_json() const;

  /// Re-validate the semantic constraints (horizons, stride, scenario
  /// expression, grid/override values against the applier registry).
  /// from_json validates on entry; call this again after mutating fields
  /// in code, as the benches do. SweepSpec::from_profile always calls it.
  void validate(const sweep::ScenarioCatalog& catalog =
                    sweep::ScenarioCatalog::global()) const;
};

/// The valid top-level profile keys, in canonical order (for error text
/// and docs).
[[nodiscard]] const std::vector<std::string>& profile_keys();

}  // namespace cloudmedia::profile
