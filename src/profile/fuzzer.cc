#include "profile/fuzzer.h"

#include <algorithm>
#include <string>
#include <vector>

#include "sweep/param_grid.h"
#include "sweep/scenario_catalog.h"
#include "util/check.h"

namespace cloudmedia::profile {

namespace {

/// Plausible values per registry parameter — the fuzzer's vocabulary.
/// Values come from the ranges the committed presets and the paper's
/// evaluation exercise; the fuzzer's job is to *combine* them in ways no
/// preset does, not to probe the appliers' own range validation (the
/// junk-rejection tests cover that).
struct ValuePool {
  const char* parameter;
  std::vector<const char*> values;
};

const std::vector<ValuePool>& value_pools() {
  static const std::vector<ValuePool> pools = {
      {"channels", {"2", "3", "4", "6", "8"}},
      {"arrival", {"0.5", "1", "1.5", "2"}},
      {"zipf", {"0.8", "1", "1.2"}},
      {"uplink_ratio", {"0.9", "1", "1.2"}},
      {"jump", {"0.1", "0.28", "0.4"}},
      {"leave", {"0.05", "0.12", "0.2"}},
      {"alpha", {"0.4", "0.6", "0.8"}},
      {"uplink_shape", {"1.5", "3", "8"}},
      {"chunk_minutes", {"2.5", "5", "10", "20"}},
      {"region", {"global", "asia", "europe", "americas"}},
      {"mode", {"cs", "p2p"}},
      {"strategy",
       {"model", "model-nofloor", "reactive", "static", "seasonal",
        "clairvoyant", "forecast"}},
      {"capacity", {"literal", "pooled"}},
      {"vm_budget", {"50", "100", "200"}},
      {"storage_budget", {"0.5", "1", "2"}},
      {"boot_delay", {"0", "25", "120", "600"}},
      {"p2p_cap", {"literal", "bandwidth"}},
      {"forecaster",
       {"persistence", "moving-average", "holt", "seasonal-ewma",
        "holt-winters"}},
      {"reactive_margin", {"1", "1.1", "1.25"}},
      {"engine", {"discrete", "cohort", "auto"}},
      {"cohort_threshold", {"1000", "100000"}},
  };
  return pools;
}

/// k distinct indices out of [0, n), in random order.
std::vector<std::size_t> sample_distinct(util::Rng& rng, std::size_t n,
                                         std::size_t k) {
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: only the first k slots matter.
  for (std::size_t i = 0; i < k && i + 1 < n; ++i) {
    const std::size_t j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<int>(i), static_cast<int>(n - 1)));
    std::swap(all[i], all[j]);
  }
  all.resize(std::min(k, n));
  return all;
}

std::vector<std::string> split_parts(const std::string& expression) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= expression.size()) {
    const std::size_t plus = expression.find('+', start);
    const std::size_t end = plus == std::string::npos ? expression.size() : plus;
    parts.push_back(expression.substr(start, end - start));
    if (plus == std::string::npos) break;
    start = plus + 1;
  }
  return parts;
}

std::string join_parts(const std::vector<std::string>& parts) {
  std::string expression;
  for (const std::string& part : parts) {
    if (!expression.empty()) expression += '+';
    expression += part;
  }
  return expression;
}

}  // namespace

namespace {

Profile compose_profile(util::Rng& rng, const FuzzOptions& options) {
  Profile p;

  // Scenario: 1..max distinct catalog parts, composed left to right; up to
  // max_timed_parts of them get a random mid-run fire time in whole
  // minutes (a time past the horizon is valid — the op just never fires).
  const std::vector<std::string> names =
      sweep::ScenarioCatalog::global().names();
  const std::size_t num_parts = static_cast<std::size_t>(rng.uniform_int(
      1, static_cast<int>(std::max<std::size_t>(1, options.max_scenario_parts))));
  std::vector<std::string> parts;
  std::size_t timed = 0;
  for (const std::size_t index :
       sample_distinct(rng, names.size(), num_parts)) {
    std::string part = names[index];
    if (timed < options.max_timed_parts && rng.bernoulli(0.4)) {
      part += "@" + std::to_string(rng.uniform_int(10, 120)) + "m";
      ++timed;
    }
    parts.push_back(std::move(part));
  }
  p.scenario = join_parts(parts);

  // Short horizons: the checker runs every profile twice.
  const double warmups[] = {0.0, 0.1, 0.25};
  const double measures[] = {0.5, 0.75, 1.0};
  p.warmup_hours = warmups[rng.uniform_int(0, 2)];
  p.measure_hours = measures[rng.uniform_int(0, 2)];

  p.seed = rng.next_u64();

  // Grid axes and overrides draw DISTINCT parameters from one shuffle, so
  // an override never silently loses to an axis of the same name.
  const std::vector<ValuePool>& pools = value_pools();
  const std::size_t num_axes =
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(options.max_axes)));
  const std::size_t num_overrides = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(options.max_overrides)));
  const std::vector<std::size_t> picked =
      sample_distinct(rng, pools.size(), num_axes + num_overrides);
  for (std::size_t i = 0; i < picked.size(); ++i) {
    const ValuePool& pool = pools[picked[i]];
    if (i < num_axes) {
      const std::size_t want = static_cast<std::size_t>(rng.uniform_int(
          1, static_cast<int>(std::min(options.max_values_per_axis,
                                       pool.values.size()))));
      std::vector<std::string> values;
      for (const std::size_t v :
           sample_distinct(rng, pool.values.size(), want)) {
        values.emplace_back(pool.values[v]);
      }
      p.grid.add_axis(pool.parameter, std::move(values));
    } else {
      p.overrides.emplace_back(
          pool.parameter,
          pool.values[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(pool.values.size()) - 1))]);
    }
  }

  p.validate();
  return p;
}

}  // namespace

Profile random_profile(util::Rng& rng, const FuzzOptions& options) {
  // Not every random composition is valid: giving a part like
  // long_tail_catalog an `@` fire time schedules a timed op that mutates
  // a frozen field, which compose_profile's validate() rejects. Redraw
  // until a composition passes — the retry sequence consumes the rng
  // deterministically, so --seed still replays the identical profiles.
  for (int attempt = 0; attempt < 64; ++attempt) {
    try {
      return compose_profile(rng, options);
    } catch (const util::PreconditionError&) {
      continue;
    }
  }
  throw util::PreconditionError(
      "random_profile could not compose a valid profile in 64 attempts — "
      "the generator's vocabulary disagrees with the validators");
}

Profile minimize_failing_profile(
    const Profile& failing,
    const std::function<bool(const Profile&)>& still_fails) {
  Profile best = failing;
  // Greedy deletion to a fixed point; every accepted step strictly shrinks
  // the profile, so the bound is generous.
  for (int round = 0; round < 100; ++round) {
    bool shrunk = false;

    // Scenario: drop one part, or collapse a single non-default part to
    // the identity-ish baseline.
    const std::vector<std::string> parts = split_parts(best.scenario);
    if (parts.size() > 1) {
      for (std::size_t skip = 0; skip < parts.size() && !shrunk; ++skip) {
        std::vector<std::string> fewer;
        for (std::size_t i = 0; i < parts.size(); ++i) {
          if (i != skip) fewer.push_back(parts[i]);
        }
        Profile candidate = best;
        candidate.scenario = join_parts(fewer);
        if (still_fails(candidate)) {
          best = std::move(candidate);
          shrunk = true;
        }
      }
    } else if (best.scenario != "baseline_diurnal") {
      Profile candidate = best;
      candidate.scenario = "baseline_diurnal";
      if (still_fails(candidate)) {
        best = std::move(candidate);
        shrunk = true;
      }
    }

    // Overrides: drop one.
    for (std::size_t skip = 0; skip < best.overrides.size() && !shrunk;
         ++skip) {
      Profile candidate = best;
      candidate.overrides.erase(candidate.overrides.begin() +
                                static_cast<std::ptrdiff_t>(skip));
      if (still_fails(candidate)) {
        best = std::move(candidate);
        shrunk = true;
      }
    }

    // Grid: drop a whole axis, or one value of a multi-value axis.
    const std::vector<sweep::ParamAxis>& axes = best.grid.axes();
    for (std::size_t a = 0; a < axes.size() && !shrunk; ++a) {
      {
        Profile candidate = best;
        candidate.grid = sweep::ParamGrid();
        for (std::size_t i = 0; i < axes.size(); ++i) {
          if (i != a) candidate.grid.add_axis(axes[i].name, axes[i].values);
        }
        if (still_fails(candidate)) {
          best = std::move(candidate);
          shrunk = true;
          break;
        }
      }
      for (std::size_t v = 0; v < axes[a].values.size() && !shrunk &&
                              axes[a].values.size() > 1;
           ++v) {
        Profile candidate = best;
        candidate.grid = sweep::ParamGrid();
        for (std::size_t i = 0; i < axes.size(); ++i) {
          std::vector<std::string> values = axes[i].values;
          if (i == a) {
            values.erase(values.begin() + static_cast<std::ptrdiff_t>(v));
          }
          candidate.grid.add_axis(axes[i].name, std::move(values));
        }
        if (still_fails(candidate)) {
          best = std::move(candidate);
          shrunk = true;
        }
      }
    }

    if (!shrunk) break;
  }
  return best;
}

}  // namespace cloudmedia::profile
