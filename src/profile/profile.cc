#include "profile/profile.h"

#include <cmath>
#include <stdexcept>

#include "expr/config.h"
#include "expr/runner.h"
#include "util/check.h"

namespace cloudmedia::profile {

namespace {

const char* type_name(const util::JsonValue& value) {
  switch (value.type()) {
    case util::JsonValue::Type::kNull:
      return "null";
    case util::JsonValue::Type::kBool:
      return "a boolean";
    case util::JsonValue::Type::kNumber:
      return "a number";
    case util::JsonValue::Type::kString:
      return "a string";
    case util::JsonValue::Type::kArray:
      return "an array";
    case util::JsonValue::Type::kObject:
      return "an object";
  }
  return "an unknown value";
}

[[noreturn]] void fail_key(const std::string& key, const std::string& why) {
  throw util::PreconditionError("profile key '" + key + "': " + why);
}

[[noreturn]] void fail_unknown_key(const std::string& key) {
  std::string valid;
  for (const std::string& known : profile_keys()) {
    if (!valid.empty()) valid += ", ";
    valid += known;
  }
  throw util::PreconditionError("unknown profile key '" + key +
                                "' (valid keys: " + valid + ")");
}

double require_number(const std::string& key, const util::JsonValue& value) {
  if (!value.is_number()) {
    fail_key(key, std::string("expected a number, got ") + type_name(value));
  }
  return value.as_number();
}

std::string require_string(const std::string& key,
                           const util::JsonValue& value) {
  if (!value.is_string()) {
    fail_key(key, std::string("expected a string, got ") + type_name(value));
  }
  return value.as_string();
}

/// Grid/override values may be written as JSON strings or numbers; numbers
/// canonicalize through format_number so "8" and 8 mean the same axis
/// value (and the same per-run seed hash bytes).
std::string string_or_number(const std::string& key,
                             const util::JsonValue& value) {
  if (value.is_string()) return value.as_string();
  if (value.is_number()) return util::format_number(value.as_number());
  fail_key(key,
           std::string("expected a string or number, got ") + type_name(value));
}

std::uint64_t parse_seed(const util::JsonValue& value) {
  if (value.is_number()) {
    const double n = value.as_number();
    if (!(n >= 0.0) || n != std::floor(n) || n > 9007199254740992.0) {
      fail_key("seed",
               "a numeric seed must be a non-negative integer below 2^53 "
               "(larger seeds do not survive a double round-trip: write "
               "them as a decimal string, e.g. \"seed\": \"42\")");
    }
    return static_cast<std::uint64_t>(n);
  }
  const std::string text = require_string("seed", value);
  if (text.empty()) fail_key("seed", "expected a non-empty decimal string");
  for (const char c : text) {
    if (c < '0' || c > '9') {
      fail_key("seed", "'" + text + "' is not a decimal unsigned integer");
    }
  }
  try {
    return std::stoull(text);
  } catch (const std::exception&) {
    fail_key("seed", "'" + text + "' does not fit in 64 bits");
  }
}

std::size_t parse_series_stride(const util::JsonValue& value) {
  const double n = require_number("series_stride", value);
  if (!(n >= 1.0) || n != std::floor(n)) {
    fail_key("series_stride", "expected an integer >= 1, got " +
                                  util::format_number(n));
  }
  return static_cast<std::size_t>(n);
}

sweep::ParamGrid parse_grid(const util::JsonValue& value) {
  if (!value.is_array()) {
    fail_key("grid", std::string("expected an array of "
                                 "{\"name\": ..., \"values\": [...]} axes, "
                                 "got ") +
                         type_name(value));
  }
  sweep::ParamGrid grid;
  for (const util::JsonValue& entry : value.items()) {
    if (!entry.is_object()) {
      fail_key("grid", std::string("each axis must be an object with "
                                   "\"name\" and \"values\", got ") +
                           type_name(entry));
    }
    std::string axis_name;
    std::vector<std::string> values;
    bool saw_name = false, saw_values = false;
    for (const auto& [key, member] : entry.members()) {
      if (key == "name") {
        if (saw_name) fail_key("grid", "axis repeats the \"name\" key");
        saw_name = true;
        axis_name = require_string("grid.name", member);
      } else if (key == "values") {
        if (saw_values) fail_key("grid", "axis repeats the \"values\" key");
        saw_values = true;
        if (!member.is_array()) {
          fail_key("grid.values",
                   std::string("expected an array, got ") + type_name(member));
        }
        for (const util::JsonValue& v : member.items()) {
          values.push_back(string_or_number("grid.values", v));
        }
      } else {
        fail_key("grid", "unknown axis key '" + key +
                             "' (an axis takes exactly \"name\" and "
                             "\"values\")");
      }
    }
    if (!saw_name) fail_key("grid", "axis is missing \"name\"");
    if (!saw_values || values.empty()) {
      fail_key("grid", "axis '" + axis_name +
                           "' needs a non-empty \"values\" array");
    }
    // add_axis teaches: unknown parameter names and duplicate axes both
    // throw with the registry list.
    grid.add_axis(std::move(axis_name), std::move(values));
  }
  return grid;
}

std::vector<std::pair<std::string, std::string>> parse_overrides(
    const util::JsonValue& value) {
  if (!value.is_object()) {
    fail_key("overrides",
             std::string("expected an object of parameter: value pairs, "
                         "got ") +
                 type_name(value));
  }
  std::vector<std::pair<std::string, std::string>> overrides;
  for (const auto& [key, member] : value.members()) {
    for (const auto& [seen, unused] : overrides) {
      (void)unused;
      if (seen == key) {
        fail_key("overrides", "duplicate parameter '" + key + "'");
      }
    }
    overrides.emplace_back(key, string_or_number("overrides." + key, member));
  }
  return overrides;
}

}  // namespace

const std::vector<std::string>& profile_keys() {
  static const std::vector<std::string> keys = {
      "name",  "description", "scenario",       "seed",  "warmup_hours",
      "measure_hours", "grid", "overrides", "series_stride", "shard",
  };
  return keys;
}

Profile Profile::from_json(const util::JsonValue& doc,
                           const sweep::ScenarioCatalog& catalog) {
  if (!doc.is_object()) {
    throw util::PreconditionError(
        std::string("a profile must be a JSON object, got ") + type_name(doc));
  }
  Profile p;
  std::vector<std::string> seen;
  for (const auto& [key, value] : doc.members()) {
    for (const std::string& prior : seen) {
      if (prior == key) fail_key(key, "appears more than once");
    }
    seen.push_back(key);
    if (key == "name") {
      p.name = require_string(key, value);
    } else if (key == "description") {
      p.description = require_string(key, value);
    } else if (key == "scenario") {
      p.scenario = require_string(key, value);
    } else if (key == "seed") {
      p.seed = parse_seed(value);
    } else if (key == "warmup_hours") {
      p.warmup_hours = require_number(key, value);
    } else if (key == "measure_hours") {
      p.measure_hours = require_number(key, value);
    } else if (key == "grid") {
      p.grid = parse_grid(value);
    } else if (key == "overrides") {
      p.overrides = parse_overrides(value);
    } else if (key == "series_stride") {
      p.series_stride = parse_series_stride(value);
    } else if (key == "shard") {
      p.shard = sweep::ShardSpec::parse(require_string(key, value));
    } else {
      fail_unknown_key(key);
    }
  }
  p.validate(catalog);
  return p;
}

Profile Profile::load(const std::string& path,
                      const sweep::ScenarioCatalog& catalog) {
  util::JsonValue doc;
  try {
    doc = util::JsonValue::parse_file(path);
  } catch (const std::exception& error) {
    throw util::PreconditionError("profile '" + path +
                                  "': " + error.what());
  }
  try {
    return from_json(doc, catalog);
  } catch (const util::PreconditionError& error) {
    throw util::PreconditionError("profile '" + path +
                                  "': " + error.what());
  }
}

Profile Profile::from_spec(const sweep::SweepSpec& spec, std::string name,
                           std::string description) {
  Profile p;
  p.name = std::move(name);
  p.description = std::move(description);
  p.scenario = spec.scenario;
  p.seed = spec.base_seed;
  p.warmup_hours = spec.warmup_hours;
  p.measure_hours = spec.measure_hours;
  p.grid = spec.grid;
  p.overrides = spec.overrides;
  p.series_stride = spec.series_stride;
  p.shard = spec.shard;
  return p;
}

util::JsonValue Profile::to_json() const {
  util::JsonValue doc = util::JsonValue::object();
  if (!name.empty()) doc["name"] = name;
  if (!description.empty()) doc["description"] = description;
  doc["scenario"] = scenario;
  // Decimal string: 64-bit seeds do not survive a double round-trip.
  doc["seed"] = std::to_string(seed);
  doc["warmup_hours"] = warmup_hours;
  doc["measure_hours"] = measure_hours;
  if (!grid.axes().empty()) {
    util::JsonValue axes = util::JsonValue::array();
    for (const sweep::ParamAxis& axis : grid.axes()) {
      util::JsonValue entry = util::JsonValue::object();
      entry["name"] = axis.name;
      util::JsonValue values = util::JsonValue::array();
      for (const std::string& value : axis.values) values.push_back(value);
      entry["values"] = std::move(values);
      axes.push_back(std::move(entry));
    }
    doc["grid"] = std::move(axes);
  }
  if (!overrides.empty()) {
    util::JsonValue fixed = util::JsonValue::object();
    for (const auto& [parameter, value] : overrides) fixed[parameter] = value;
    doc["overrides"] = std::move(fixed);
  }
  if (series_stride != 1) {
    doc["series_stride"] = static_cast<double>(series_stride);
  }
  if (!shard.whole()) doc["shard"] = shard.label();
  return doc;
}

void Profile::validate(const sweep::ScenarioCatalog& catalog) const {
  if (!(warmup_hours >= 0.0) || !std::isfinite(warmup_hours)) {
    fail_key("warmup_hours",
             "must be a finite number of hours >= 0, got " +
                 util::format_number(warmup_hours));
  }
  if (!(measure_hours > 0.0) || !std::isfinite(measure_hours)) {
    fail_key("measure_hours",
             "must be a finite number of hours > 0, got " +
                 util::format_number(measure_hours));
  }
  if (series_stride < 1) fail_key("series_stride", "must be >= 1");
  if (shard.count < 1 || shard.index >= shard.count) {
    fail_key("shard", "must be k/N with 0 <= k < N, got " + shard.label());
  }
  // The scenario expression (including any `@` fire times) resolves
  // against the catalog — unknown parts and malformed times throw the
  // resolver's teaching errors.
  const sweep::Scenario resolved = catalog.resolve(scenario);
  // Every override and grid value must apply cleanly to a scratch config,
  // so a typo'd mode or out-of-range chunk size fails at load time with
  // the applier registry's error, not mid-sweep on a worker thread.
  const expr::ExperimentConfig base =
      expr::ExperimentConfig::make_default(core::StreamingMode::kClientServer);
  for (const auto& [parameter, value] : overrides) {
    expr::ExperimentConfig scratch = base;
    sweep::apply_parameter(scratch, parameter, value);
  }
  for (const sweep::ParamAxis& axis : grid.axes()) {
    for (const std::string& value : axis.values) {
      expr::ExperimentConfig scratch = base;
      sweep::apply_parameter(scratch, axis.name, value);
    }
  }
  // And the timed ops a composite like `catalog_refresh@90m` schedules
  // must pass the runner's dry pass (no frozen-field mutations, valid
  // intermediate workloads) — again so the error arrives at load time
  // with the profile named, not mid-sweep.
  expr::ExperimentConfig effective = base;
  resolved.apply(effective);
  for (const auto& [parameter, value] : overrides) {
    sweep::apply_parameter(effective, parameter, value);
  }
  expr::validate_timeline(effective);
}

}  // namespace cloudmedia::profile

namespace cloudmedia::sweep {

SweepSpec SweepSpec::from_profile(const profile::Profile& p) {
  p.validate();
  SweepSpec spec;
  spec.scenario = p.scenario;
  spec.grid = p.grid;
  spec.base_seed = p.seed;
  spec.threads = 0;  // execution knob: hardware by default, never in a profile
  spec.warmup_hours = p.warmup_hours;
  spec.measure_hours = p.measure_hours;
  spec.series_stride = p.series_stride;
  spec.shard = p.shard;
  spec.overrides = p.overrides;
  return spec;
}

}  // namespace cloudmedia::sweep
