#pragma once

#include <cstddef>
#include <functional>

#include "profile/profile.h"
#include "util/rng.h"

namespace cloudmedia::profile {

/// Bounds on what random_profile composes. The defaults keep each fuzz
/// profile cheap enough that `tool_fuzz --runs=25` (two sweep executions
/// per profile — see check_profile_invariants) fits in a CI smoke job.
struct FuzzOptions {
  std::size_t max_scenario_parts = 2;  ///< catalog names composed with '+'
  std::size_t max_timed_parts = 1;     ///< parts that get an @fire-time
  std::size_t max_axes = 2;            ///< grid axes
  std::size_t max_values_per_axis = 2;
  std::size_t max_overrides = 2;       ///< pinned registry parameters
};

/// Compose a random — but always *valid* — profile: scenario parts drawn
/// from the live catalog (some with random `@<minutes>m` fire times), grid
/// axes and overrides drawn from the applier registry with values from
/// each parameter's plausible pool, short horizons, and a random 64-bit
/// seed. The point is to exercise combinations no committed preset covers;
/// check_profile_invariants then decides whether the simulator honored its
/// contracts on them. Deterministic in the rng state: tool_fuzz --seed=S
/// replays the identical profile sequence.
[[nodiscard]] Profile random_profile(util::Rng& rng,
                                     const FuzzOptions& options = {});

/// Shrink a failing profile by greedy deletion: repeatedly try dropping a
/// scenario part (or the whole expression back to baseline_diurnal), a
/// grid axis, an axis value, or an override, keeping each deletion only
/// when `still_fails` says the smaller profile still reproduces the
/// failure. Horizons and seed are never touched — they are what the repro
/// must replay. Returns the smallest failing profile found.
[[nodiscard]] Profile minimize_failing_profile(
    const Profile& failing,
    const std::function<bool(const Profile&)>& still_fails);

}  // namespace cloudmedia::profile
