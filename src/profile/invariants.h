#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "profile/profile.h"
#include "sweep/scenario_catalog.h"

namespace cloudmedia::profile {

/// One broken invariant in one grid cell.
struct InvariantViolation {
  std::string invariant;  ///< "conservation", "budget", "quality", "determinism"
  std::string cell;       ///< GridPoint::label(), "" for sweep-wide checks
  std::string detail;     ///< the numbers that disagree
};

/// What check_profile_invariants found. ok() is the fuzzer's pass/fail.
struct InvariantReport {
  std::size_t cells = 0;  ///< grid cells executed
  std::vector<InvariantViolation> violations;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  /// One human-readable line per violation (empty string when ok).
  [[nodiscard]] std::string summary() const;
};

/// Run the profile's sweep and check the simulator contracts that must
/// hold for EVERY valid profile, however randomly composed:
///
///   conservation — arrivals == departures + viewers still in the system
///                  at the horizon (exact on the discrete engine; the
///                  cohort engine rounds fluid mass, so it gets a few
///                  viewers of slack);
///   budget       — no billed $/h sample exceeds the largest budget any
///                  timeline state grants (scenario + overrides + grid
///                  point, then every timed op applied in fire order);
///   quality      — every quality sample is finite and in [0, 1];
///   determinism  — the 1-thread and `comparison_threads`-thread runs
///                  serialize to byte-identical CSV and JSON.
///
/// The checker executes the sweep twice (once per thread count); fuzz
/// profiles keep horizons short so 25 of these finish in CI smoke time.
/// `comparison_threads` 0 means hardware.
[[nodiscard]] InvariantReport check_profile_invariants(
    const Profile& p, unsigned comparison_threads = 0,
    const sweep::ScenarioCatalog& catalog = sweep::ScenarioCatalog::global());

}  // namespace cloudmedia::profile
