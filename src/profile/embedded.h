#pragma once

#include <vector>

namespace cloudmedia::profile {

/// One committed profiles/<name>.json, embedded into the library at build
/// time by cmake/EmbedProfiles.cmake. The committed JSON files are the
/// golden presets' single source of truth — embedding (rather than
/// runtime file loading) keeps golden_presets() hermetic: tests and tools
/// work from any working directory with no search paths.
struct EmbeddedProfile {
  const char* name;  ///< file stem; must equal the profile's "name" field
  const char* json;  ///< the file's exact bytes
};

/// Every embedded profile, sorted by name. Defined in the generated
/// golden_profiles_embed.cc (see the root CMakeLists).
[[nodiscard]] const std::vector<EmbeddedProfile>& embedded_golden_profiles();

}  // namespace cloudmedia::profile
