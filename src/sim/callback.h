#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "util/check.h"

namespace cloudmedia::sim {

/// Move-only type-erased `void()` callable with inline small-buffer
/// storage, sized for the captures the vod layer actually schedules
/// (this + a channel/chunk pair + a timestamp, a shared_ptr + a double —
/// all well under 48 bytes). std::function heap-allocates every one of
/// those on libstdc++ (its inline buffer is two words), which made the
/// allocator the top entry in the discrete engine's event-path profile;
/// this type keeps the hot schedule→run→destroy cycle allocation-free and
/// falls back to the heap only for oversized or throwing-move captures.
///
/// Move-only on purpose: simulator callbacks are scheduled once and run
/// once, so requiring copyability (as std::function does) would only
/// forbid useful captures like unique_ptr.
class Callback {
 public:
  /// Inline capture budget. Callables up to this size (and nothrow-move)
  /// live inside the Callback object itself.
  static constexpr std::size_t kInlineBytes = 48;

  Callback() noexcept = default;
  Callback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  Callback(F&& fn) {  // NOLINT(google-explicit-constructor)
    construct<D>(std::forward<F>(fn));
  }

  Callback(Callback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  Callback& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  void operator()() {
    CM_EXPECTS(ops_ != nullptr);
    ops_->invoke(storage_);
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }
  friend bool operator==(const Callback& c, std::nullptr_t) noexcept {
    return c.ops_ == nullptr;
  }
  friend bool operator!=(const Callback& c, std::nullptr_t) noexcept {
    return c.ops_ != nullptr;
  }

  /// True when a callable of this type would use the inline buffer
  /// (exposed so tests/benches can pin which captures stay allocation-free).
  template <typename F>
  static constexpr bool stores_inline() noexcept {
    using D = std::decay_t<F>;
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  /// Per-erased-type operation table; one static instance per callable
  /// type, so the object itself carries a single pointer of overhead.
  struct Ops {
    void (*invoke)(void* storage);
    void (*relocate)(void* dst, void* src) noexcept;  ///< move-construct + destroy src
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  struct InlineOps {
    static void invoke(void* storage) { (*std::launder(reinterpret_cast<D*>(storage)))(); }
    static void relocate(void* dst, void* src) noexcept {
      D* from = std::launder(reinterpret_cast<D*>(src));
      ::new (dst) D(std::move(*from));
      from->~D();
    }
    static void destroy(void* storage) noexcept {
      std::launder(reinterpret_cast<D*>(storage))->~D();
    }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename D>
  struct HeapOps {
    static D*& slot(void* storage) noexcept {
      return *std::launder(reinterpret_cast<D**>(storage));
    }
    static void invoke(void* storage) { (*slot(storage))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D*(slot(src));
    }
    static void destroy(void* storage) noexcept { delete slot(storage); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename D, typename F>
  void construct(F&& fn) {
    if constexpr (stores_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &InlineOps<D>::ops;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      ops_ = &HeapOps<D>::ops;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

}  // namespace cloudmedia::sim
