#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace cloudmedia::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Deterministic single-threaded discrete-event simulator.
///
/// Events at equal timestamps fire in scheduling order (stable FIFO
/// tie-break via a monotonically increasing sequence number), which keeps
/// runs bitwise-reproducible for a given seed. Callbacks may schedule and
/// cancel further events freely.
///
/// Storage layout, chosen for event throughput (bench/micro_core.cc): the
/// heap holds trivially-movable (time, id) pairs only, and callbacks live
/// in a dense id-indexed window (ids are allocated contiguously). cancel()
/// just nulls the slot — a tombstone the pop loop skips — so the hot
/// schedule→pop→run path does no hashing and no per-event node allocation.
/// Measured ~3x the events/s of the previous unordered_map design.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] double now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(double t, Callback fn);
  /// Schedule `fn` after `delay` seconds (delay >= 0).
  EventId schedule_in(double delay, Callback fn);

  /// Schedule a whole batch in one call: ids are contiguous and assigned in
  /// batch order, so equal-time events fire in batch order (the same FIFO
  /// guarantee as a loop of schedule_at), but storage is reserved once and
  /// the heap is rebuilt in O(pending + batch) when the batch is large
  /// instead of O(batch · log pending). Returns the first id (the k-th
  /// entry gets first + k), or kInvalidEvent for an empty batch.
  EventId schedule_bulk(std::vector<std::pair<double, Callback>> batch);

  /// Cancel a pending event. Returns false if it already ran or was
  /// cancelled. Cancelling kInvalidEvent is a no-op returning false.
  bool cancel(EventId id) noexcept;

  /// Run every event with timestamp <= t, then advance the clock to t.
  void run_until(double t);
  /// Run until the queue drains or `max_events` have fired.
  /// Returns the number of events processed.
  std::size_t run_all(std::size_t max_events = SIZE_MAX);

  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }
  [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }

  /// Handle controlling a periodic task; destroying the handle does NOT
  /// cancel the task (call cancel()). Copyable (shared control block).
  class PeriodicHandle {
   public:
    PeriodicHandle() = default;
    void cancel() noexcept {
      if (active_) *active_ = false;
    }
    [[nodiscard]] bool active() const noexcept { return active_ && *active_; }

   private:
    friend class Simulator;
    explicit PeriodicHandle(std::shared_ptr<bool> active)
        : active_(std::move(active)) {}
    std::shared_ptr<bool> active_;
  };

  /// Fire `fn(fire_time)` at `start`, `start + interval`, ... until the
  /// returned handle is cancelled. interval must be > 0.
  PeriodicHandle schedule_periodic(double start, double interval,
                                   std::function<void(double)> fn);

 private:
  struct Entry {
    double time;
    EventId id;
    // min-heap: earliest time first; FIFO among equal times.
    [[nodiscard]] bool operator>(const Entry& other) const noexcept {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  void pop_and_run();
  [[nodiscard]] bool retired(EventId id) const noexcept;
  /// Take the callback of a pending event out of its slot (leaving the
  /// null tombstone) and compact the window front.
  Callback retire(EventId id) noexcept;

  double now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t pending_ = 0;
  std::vector<Entry> heap_;  ///< std::push_heap/pop_heap with operator>

  // Callback slots for ids in [base_, next_id_), in order; a null slot is
  // a retired event (ran or cancelled). Ids below base_ are retired, and
  // their heap entries — if still queued — are skipped as tombstones when
  // their timestamp pops. The window front compacts as it retires, so
  // memory tracks the id spread of *pending* events, not the run length.
  EventId base_ = 1;
  std::deque<Callback> slots_;
};

}  // namespace cloudmedia::sim
