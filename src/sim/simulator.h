#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/callback.h"

namespace cloudmedia::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Deterministic single-threaded discrete-event simulator.
///
/// Events at equal timestamps fire in scheduling order (stable FIFO
/// tie-break via a monotonically increasing sequence number), which keeps
/// runs bitwise-reproducible for a given seed. Callbacks may schedule and
/// cancel further events freely.
///
/// Storage layout, chosen for event throughput (bench/micro_core.cc): the
/// heap holds trivially-movable (time, id) pairs only, and callbacks live
/// in a power-of-two ring buffer indexed by `id & mask` (ids are allocated
/// contiguously, so every id in the pending window maps to a distinct
/// slot). cancel() just nulls the slot — a tombstone the pop loop skips.
/// Ids themselves are never reused (the FIFO tie-break depends on them
/// being monotone), but their *slots* are: once an event retires, the ring
/// position becomes available to a future id with no deallocation, so the
/// steady-state schedule→pop→run cycle performs no hashing and — with the
/// small-buffer Callback — no per-event allocation at all. The ring only
/// grows when the spread between the oldest pending id and the newest
/// exceeds its capacity.
class Simulator {
 public:
  /// Scheduled events use the move-only small-buffer callback; every
  /// capture list the vod layer schedules fits its inline storage.
  using Callback = sim::Callback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] double now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(double t, Callback fn);
  /// Schedule `fn` after `delay` seconds (delay >= 0).
  EventId schedule_in(double delay, Callback fn);

  /// Schedule a whole batch in one call: ids are contiguous and assigned in
  /// batch order, so equal-time events fire in batch order (the same FIFO
  /// guarantee as a loop of schedule_at), but storage is reserved once and
  /// the heap is rebuilt in O(pending + batch) when the batch is large
  /// instead of O(batch · log pending). Returns the first id (the k-th
  /// entry gets first + k), or kInvalidEvent for an empty batch.
  EventId schedule_bulk(std::vector<std::pair<double, Callback>> batch);

  /// Cancel a pending event. Returns false if it already ran or was
  /// cancelled. Cancelling kInvalidEvent is a no-op returning false.
  bool cancel(EventId id) noexcept;

  /// Run every event with timestamp <= t, then advance the clock to t.
  void run_until(double t);
  /// Run until the queue drains or `max_events` have fired.
  /// Returns the number of events processed.
  std::size_t run_all(std::size_t max_events = SIZE_MAX);

  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }
  [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }

  /// Current callback-ring capacity in slots (tests/benches only: pins the
  /// "slots recycle, ring does not grow with run length" contract).
  [[nodiscard]] std::size_t callback_ring_capacity() const noexcept {
    return ring_.size();
  }

  /// Handle controlling a periodic task; destroying the handle does NOT
  /// cancel the task (call cancel()). Copyable (shared control block).
  class PeriodicHandle {
   public:
    PeriodicHandle() = default;
    void cancel() noexcept {
      if (active_) *active_ = false;
    }
    [[nodiscard]] bool active() const noexcept { return active_ && *active_; }

   private:
    friend class Simulator;
    explicit PeriodicHandle(std::shared_ptr<bool> active)
        : active_(std::move(active)) {}
    std::shared_ptr<bool> active_;
  };

  /// Fire `fn(fire_time)` at `start`, `start + interval`, ... until the
  /// returned handle is cancelled. interval must be > 0.
  PeriodicHandle schedule_periodic(double start, double interval,
                                   std::function<void(double)> fn);

 private:
  struct Entry {
    double time;
    EventId id;
    // min-heap: earliest time first; FIFO among equal times.
    [[nodiscard]] bool operator>(const Entry& other) const noexcept {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  void pop_and_run();
  [[nodiscard]] bool retired(EventId id) const noexcept;
  /// Take the callback of a pending event out of its slot (leaving the
  /// null tombstone) and compact the window front.
  Callback retire(EventId id) noexcept;
  /// Grow the ring to a power of two >= min_capacity, re-seating the
  /// pending window at the new `id & mask` positions.
  void grow_ring(std::size_t min_capacity);

  double now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t pending_ = 0;
  std::vector<Entry> heap_;  ///< std::push_heap/pop_heap with operator>

  // Callback slots for ids in [base_, next_id_) at ring_[id & ring_mask_];
  // a null slot is a retired event (ran or cancelled). Ids below base_ are
  // retired, and their heap entries — if still queued — are skipped as
  // tombstones when their timestamp pops. base_ compacts forward as the
  // oldest pending events retire, freeing their ring positions for reuse,
  // so capacity tracks the id spread of *pending* events, not run length.
  EventId base_ = 1;
  std::vector<Callback> ring_;
  std::size_t ring_mask_ = 0;  ///< ring_.size() - 1 (size is a power of two)
};

}  // namespace cloudmedia::sim
