#include "sim/simulator.h"

#include <utility>

#include "util/check.h"

namespace cloudmedia::sim {

EventId Simulator::schedule_at(double t, Callback fn) {
  CM_EXPECTS(t >= now_);
  CM_EXPECTS(fn != nullptr);
  const EventId id = next_id_++;
  heap_.push(Entry{t, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

EventId Simulator::schedule_in(double delay, Callback fn) {
  CM_EXPECTS(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) noexcept {
  // The heap entry stays behind as a tombstone; pop_and_run skips entries
  // whose callback has been erased.
  return callbacks_.erase(id) > 0;
}

void Simulator::pop_and_run() {
  const Entry entry = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(entry.id);
  if (it == callbacks_.end()) return;  // cancelled
  Callback fn = std::move(it->second);
  callbacks_.erase(it);
  now_ = entry.time;
  ++processed_;
  fn();
}

void Simulator::run_until(double t) {
  CM_EXPECTS(t >= now_);
  while (!heap_.empty() && heap_.top().time <= t) pop_and_run();
  now_ = t;
}

std::size_t Simulator::run_all(std::size_t max_events) {
  std::size_t n = 0;
  while (!heap_.empty() && n < max_events) {
    const std::uint64_t before = processed_;
    pop_and_run();
    n += static_cast<std::size_t>(processed_ - before);
  }
  return n;
}

Simulator::PeriodicHandle Simulator::schedule_periodic(
    double start, double interval, std::function<void(double)> fn) {
  CM_EXPECTS(interval > 0.0);
  CM_EXPECTS(start >= now_);
  CM_EXPECTS(fn != nullptr);
  auto active = std::make_shared<bool>(true);
  // Self-rescheduling closure; the shared flag decouples cancellation from
  // the (changing) per-firing event id.
  auto tick = std::make_shared<std::function<void(double)>>();
  *tick = [this, active, interval, fn = std::move(fn), tick](double fire_time) {
    if (!*active) return;
    fn(fire_time);
    if (!*active) return;
    const double next = fire_time + interval;
    schedule_at(next, [tick, next] { (*tick)(next); });
  };
  schedule_at(start, [tick, start] { (*tick)(start); });
  return PeriodicHandle(std::move(active));
}

}  // namespace cloudmedia::sim
