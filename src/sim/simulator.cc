#include "sim/simulator.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "util/check.h"

namespace cloudmedia::sim {

bool Simulator::retired(EventId id) const noexcept {
  if (id < base_) return true;
  return slots_[static_cast<std::size_t>(id - base_)] == nullptr;
}

Simulator::Callback Simulator::retire(EventId id) noexcept {
  Callback fn = std::move(slots_[static_cast<std::size_t>(id - base_)]);
  slots_[static_cast<std::size_t>(id - base_)] = nullptr;
  --pending_;
  // Amortized-O(1) compaction keeps the window anchored at the oldest
  // still-pending id.
  while (!slots_.empty() && slots_.front() == nullptr) {
    slots_.pop_front();
    ++base_;
  }
  return fn;
}

EventId Simulator::schedule_at(double t, Callback fn) {
  CM_EXPECTS(t >= now_);
  CM_EXPECTS(fn != nullptr);
  const EventId id = next_id_++;
  slots_.push_back(std::move(fn));
  ++pending_;
  heap_.push_back(Entry{t, id});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  return id;
}

EventId Simulator::schedule_in(double delay, Callback fn) {
  CM_EXPECTS(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_bulk(std::vector<std::pair<double, Callback>> batch) {
  if (batch.empty()) return kInvalidEvent;
  const EventId first = next_id_;
  heap_.reserve(heap_.size() + batch.size());
  for (auto& [t, fn] : batch) {
    CM_EXPECTS(t >= now_);
    CM_EXPECTS(fn != nullptr);
    const EventId id = next_id_++;
    slots_.push_back(std::move(fn));
    ++pending_;
    heap_.push_back(Entry{t, id});
  }
  // Heapify beats per-entry sift-up once the batch rivals the pending set:
  // make_heap is O(total), the loop O(batch · log total).
  if (batch.size() >= heap_.size() / 4) {
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  } else {
    for (std::size_t k = heap_.size() - batch.size(); k < heap_.size(); ++k) {
      std::push_heap(heap_.begin(),
                     heap_.begin() + static_cast<std::ptrdiff_t>(k) + 1,
                     std::greater<>{});
    }
  }
  return first;
}

bool Simulator::cancel(EventId id) noexcept {
  // The heap entry stays behind as a tombstone; pop_and_run skips entries
  // whose slot is already null.
  if (id == kInvalidEvent || id >= next_id_ || retired(id)) return false;
  (void)retire(id);
  return true;
}

void Simulator::pop_and_run() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  const Entry entry = heap_.back();
  heap_.pop_back();
  if (retired(entry.id)) return;  // cancelled
  Callback fn = retire(entry.id);
  now_ = entry.time;
  ++processed_;
  fn();
}

void Simulator::run_until(double t) {
  CM_EXPECTS(t >= now_);
  while (!heap_.empty() && heap_.front().time <= t) pop_and_run();
  now_ = t;
}

std::size_t Simulator::run_all(std::size_t max_events) {
  std::size_t n = 0;
  while (!heap_.empty() && n < max_events) {
    const std::uint64_t before = processed_;
    pop_and_run();
    n += static_cast<std::size_t>(processed_ - before);
  }
  return n;
}

Simulator::PeriodicHandle Simulator::schedule_periodic(
    double start, double interval, std::function<void(double)> fn) {
  CM_EXPECTS(interval > 0.0);
  CM_EXPECTS(start >= now_);
  CM_EXPECTS(fn != nullptr);
  auto active = std::make_shared<bool>(true);
  // Self-rescheduling closure; the shared flag decouples cancellation from
  // the (changing) per-firing event id. The closure must hold itself only
  // weakly — a strong self-capture is a shared_ptr cycle that outlives the
  // simulator and leaks every periodic task ever scheduled. Ownership lives
  // in the pending event's callback: while a firing is queued (or running)
  // the lock() below succeeds, and when the last pending event is dropped
  // the whole closure chain is freed.
  auto tick = std::make_shared<std::function<void(double)>>();
  std::weak_ptr<std::function<void(double)>> weak_tick = tick;
  *tick = [this, active, interval, fn = std::move(fn),
           weak_tick](double fire_time) {
    if (!*active) return;
    fn(fire_time);
    if (!*active) return;
    const double next = fire_time + interval;
    if (auto self = weak_tick.lock()) {
      schedule_at(next, [self, next] { (*self)(next); });
    }
  };
  schedule_at(start, [tick, start] { (*tick)(start); });
  return PeriodicHandle(std::move(active));
}

}  // namespace cloudmedia::sim
