#include "sim/simulator.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "util/check.h"

namespace cloudmedia::sim {

namespace {
/// Initial ring capacity; past seeds show even tiny runs keep a few dozen
/// events in flight (dwell timers + chunk completions), so start there
/// rather than thrashing the first few doublings.
constexpr std::size_t kInitialRingSlots = 64;
}  // namespace

bool Simulator::retired(EventId id) const noexcept {
  if (id < base_) return true;
  return ring_[static_cast<std::size_t>(id) & ring_mask_] == nullptr;
}

Simulator::Callback Simulator::retire(EventId id) noexcept {
  // Callback's move constructor leaves the source disengaged, so the slot
  // becomes the null tombstone without a separate store.
  Callback fn = std::move(ring_[static_cast<std::size_t>(id) & ring_mask_]);
  --pending_;
  // Amortized-O(1) compaction keeps the window anchored at the oldest
  // still-pending id; every slot it walks past is free for reuse.
  while (base_ < next_id_ &&
         ring_[static_cast<std::size_t>(base_) & ring_mask_] == nullptr) {
    ++base_;
  }
  return fn;
}

void Simulator::grow_ring(std::size_t min_capacity) {
  std::size_t capacity = ring_.empty() ? kInitialRingSlots : ring_.size() * 2;
  while (capacity < min_capacity) capacity *= 2;
  std::vector<Callback> grown(capacity);
  const std::size_t grown_mask = capacity - 1;
  for (EventId id = base_; id < next_id_; ++id) {
    grown[static_cast<std::size_t>(id) & grown_mask] =
        std::move(ring_[static_cast<std::size_t>(id) & ring_mask_]);
  }
  ring_ = std::move(grown);
  ring_mask_ = grown_mask;
}

EventId Simulator::schedule_at(double t, Callback fn) {
  CM_EXPECTS(t >= now_);
  CM_EXPECTS(fn != nullptr);
  // Grow before allocating the id: grow_ring re-seats exactly the ids in
  // [base_, next_id_), i.e. the slots that have actually been written.
  if (static_cast<std::size_t>(next_id_ + 1 - base_) > ring_.size()) {
    grow_ring(static_cast<std::size_t>(next_id_ + 1 - base_));
  }
  const EventId id = next_id_++;
  ring_[static_cast<std::size_t>(id) & ring_mask_] = std::move(fn);
  ++pending_;
  heap_.push_back(Entry{t, id});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  return id;
}

EventId Simulator::schedule_in(double delay, Callback fn) {
  CM_EXPECTS(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_bulk(std::vector<std::pair<double, Callback>> batch) {
  if (batch.empty()) return kInvalidEvent;
  const EventId first = next_id_;
  heap_.reserve(heap_.size() + batch.size());
  if (static_cast<std::size_t>(next_id_ - base_) + batch.size() > ring_.size()) {
    grow_ring(static_cast<std::size_t>(next_id_ - base_) + batch.size());
  }
  for (auto& [t, fn] : batch) {
    CM_EXPECTS(t >= now_);
    CM_EXPECTS(fn != nullptr);
    const EventId id = next_id_++;
    ring_[static_cast<std::size_t>(id) & ring_mask_] = std::move(fn);
    ++pending_;
    heap_.push_back(Entry{t, id});
  }
  // Heapify beats per-entry sift-up once the batch rivals the pending set:
  // make_heap is O(total), the loop O(batch · log total).
  if (batch.size() >= heap_.size() / 4) {
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  } else {
    for (std::size_t k = heap_.size() - batch.size(); k < heap_.size(); ++k) {
      std::push_heap(heap_.begin(),
                     heap_.begin() + static_cast<std::ptrdiff_t>(k) + 1,
                     std::greater<>{});
    }
  }
  return first;
}

bool Simulator::cancel(EventId id) noexcept {
  // The heap entry stays behind as a tombstone; pop_and_run skips entries
  // whose slot is already null.
  if (id == kInvalidEvent || id >= next_id_ || retired(id)) return false;
  (void)retire(id);
  return true;
}

void Simulator::pop_and_run() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  const Entry entry = heap_.back();
  heap_.pop_back();
  if (retired(entry.id)) return;  // cancelled
  Callback fn = retire(entry.id);
  now_ = entry.time;
  ++processed_;
  fn();
}

void Simulator::run_until(double t) {
  CM_EXPECTS(t >= now_);
  while (!heap_.empty() && heap_.front().time <= t) pop_and_run();
  now_ = t;
}

std::size_t Simulator::run_all(std::size_t max_events) {
  std::size_t n = 0;
  while (!heap_.empty() && n < max_events) {
    const std::uint64_t before = processed_;
    pop_and_run();
    n += static_cast<std::size_t>(processed_ - before);
  }
  return n;
}

Simulator::PeriodicHandle Simulator::schedule_periodic(
    double start, double interval, std::function<void(double)> fn) {
  CM_EXPECTS(interval > 0.0);
  CM_EXPECTS(start >= now_);
  CM_EXPECTS(fn != nullptr);
  auto active = std::make_shared<bool>(true);
  // Self-rescheduling closure; the shared flag decouples cancellation from
  // the (changing) per-firing event id. The closure must hold itself only
  // weakly — a strong self-capture is a shared_ptr cycle that outlives the
  // simulator and leaks every periodic task ever scheduled. Ownership lives
  // in the pending event's callback: while a firing is queued (or running)
  // the lock() below succeeds, and when the last pending event is dropped
  // the whole closure chain is freed.
  auto tick = std::make_shared<std::function<void(double)>>();
  std::weak_ptr<std::function<void(double)>> weak_tick = tick;
  *tick = [this, active, interval, fn = std::move(fn),
           weak_tick](double fire_time) {
    if (!*active) return;
    fn(fire_time);
    if (!*active) return;
    const double next = fire_time + interval;
    if (auto self = weak_tick.lock()) {
      schedule_at(next, [self, next] { (*self)(next); });
    }
  };
  schedule_at(start, [tick, start] { (*tick)(start); });
  return PeriodicHandle(std::move(active));
}

}  // namespace cloudmedia::sim
