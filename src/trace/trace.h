#pragma once

#include <string>
#include <vector>

#include "core/controller.h"
#include "core/demand.h"
#include "core/params.h"
#include "workload/scenario.h"

namespace cloudmedia::trace {

/// One user session of a recorded workload trace: when the user arrived,
/// which channel they joined, their upload capacity, and the exact chunk
/// walk they will follow. This is the PPLive-style input the paper's
/// evaluation is driven by ("we have generated a synthetic trace, following
/// the measured user dynamics ... in PPLive VoD", Sec. VI-A), made a
/// first-class artifact: record it, save it, analyze it, or feed it to the
/// controller offline.
struct TraceSession {
  double arrival_time = 0.0;
  int channel = 0;
  double uplink = 0.0;        ///< bytes/s
  std::vector<int> chunks;    ///< non-empty chunk walk
};

struct Trace {
  int num_channels = 0;
  int chunks_per_video = 0;
  std::vector<TraceSession> sessions;  ///< sorted by arrival_time

  void validate() const;

  [[nodiscard]] std::size_t size() const noexcept { return sessions.size(); }
  /// Latest arrival time (0 for an empty trace).
  [[nodiscard]] double horizon() const noexcept;
  [[nodiscard]] std::vector<std::size_t> sessions_per_channel() const;
  /// Mean chunks per session (0 for an empty trace).
  [[nodiscard]] double mean_session_chunks() const;
};

/// Materialize a Workload's arrivals and sessions over [0, horizon) into a
/// trace. Deterministic: the same (workload config, seed, horizon) always
/// records the same trace — recording is replay.
[[nodiscard]] Trace record_trace(const workload::Workload& workload, double horizon);

/// CSV round trip. Row format:
///   arrival_time,channel,uplink,chunk0;chunk1;...
/// with a `# cloudmedia-trace v1 <channels> <chunks>` header line.
void save_trace_csv(const Trace& trace, const std::string& path);
[[nodiscard]] Trace load_trace_csv(const std::string& path);

/// Offline tracker: turns a trace into the per-interval TrackerReports the
/// controller consumes, without running a simulation — measured arrival
/// rates, empirical viewing patterns, entry distribution, and an occupancy
/// estimate (each chunk is assumed to hold a viewer for T0, the paper's
/// smooth-playback design point). Lets a provider answer "what would
/// CloudMedia have provisioned on this trace" from logs alone.
class TraceAnalyzer {
 public:
  TraceAnalyzer(Trace trace, core::VodParameters params);

  /// Reports for consecutive intervals [k·T, (k+1)·T) covering the trace.
  [[nodiscard]] std::vector<core::TrackerReport> reports(
      double interval, double mean_peer_uplink) const;

  /// Transition counts over the whole trace, row-normalized by visits
  /// (rows with no observed departure are all-zero, i.e. certain leave).
  [[nodiscard]] util::Matrix empirical_transfer(int channel) const;
  [[nodiscard]] std::vector<double> empirical_entry(int channel) const;
  /// Mean external arrival rate of `channel` over [t0, t1).
  [[nodiscard]] double arrival_rate(int channel, double t0, double t1) const;
  /// Expected users per chunk queue of `channel` at time t, assuming each
  /// chunk dwells T0.
  [[nodiscard]] std::vector<double> occupancy(int channel, double t) const;

  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }

 private:
  Trace trace_;
  core::VodParameters params_;
};

}  // namespace cloudmedia::trace
