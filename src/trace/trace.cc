#include "trace/trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace cloudmedia::trace {

void Trace::validate() const {
  CM_EXPECTS(num_channels >= 1);
  CM_EXPECTS(chunks_per_video >= 1);
  double prev = -1.0;
  for (const TraceSession& s : sessions) {
    CM_EXPECTS(s.arrival_time >= 0.0);
    CM_EXPECTS(s.arrival_time >= prev);
    prev = s.arrival_time;
    CM_EXPECTS(s.channel >= 0 && s.channel < num_channels);
    CM_EXPECTS(s.uplink >= 0.0);
    CM_EXPECTS(!s.chunks.empty());
    for (int chunk : s.chunks) {
      CM_EXPECTS(chunk >= 0 && chunk < chunks_per_video);
    }
  }
}

double Trace::horizon() const noexcept {
  return sessions.empty() ? 0.0 : sessions.back().arrival_time;
}

std::vector<std::size_t> Trace::sessions_per_channel() const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_channels), 0);
  for (const TraceSession& s : sessions) {
    counts[static_cast<std::size_t>(s.channel)]++;
  }
  return counts;
}

double Trace::mean_session_chunks() const {
  if (sessions.empty()) return 0.0;
  std::size_t total = 0;
  for (const TraceSession& s : sessions) total += s.chunks.size();
  return static_cast<double>(total) / static_cast<double>(sessions.size());
}

Trace record_trace(const workload::Workload& workload, double horizon) {
  CM_EXPECTS(horizon > 0.0);
  Trace out;
  out.num_channels = workload.num_channels();
  out.chunks_per_video = workload.config().chunks_per_video;

  for (int c = 0; c < workload.num_channels(); ++c) {
    workload::PoissonArrivals arrivals = workload.make_arrivals(c);
    std::uint64_t user_index = 0;
    for (double t = arrivals.next_after(0.0); t < horizon;
         t = arrivals.next_after(t)) {
      const workload::SessionScript script =
          workload.make_session(c, user_index++);
      out.sessions.push_back(
          TraceSession{t, script.channel, script.uplink, script.chunks});
    }
  }
  std::stable_sort(out.sessions.begin(), out.sessions.end(),
                   [](const TraceSession& a, const TraceSession& b) {
                     return a.arrival_time < b.arrival_time;
                   });
  out.validate();
  return out;
}

void save_trace_csv(const Trace& trace, const std::string& path) {
  trace.validate();
  std::ofstream file(path);
  if (!file) throw util::PreconditionError("cannot open for write: " + path);
  file << "# cloudmedia-trace v1 " << trace.num_channels << ' '
       << trace.chunks_per_video << '\n';
  file.precision(9);
  for (const TraceSession& s : trace.sessions) {
    file << s.arrival_time << ',' << s.channel << ',' << s.uplink << ',';
    for (std::size_t k = 0; k < s.chunks.size(); ++k) {
      if (k) file << ';';
      file << s.chunks[k];
    }
    file << '\n';
  }
  if (!file) throw util::PreconditionError("write failed: " + path);
}

Trace load_trace_csv(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw util::PreconditionError("cannot open for read: " + path);

  // Header: "# cloudmedia-trace v1 <channels> <chunks>"
  std::string header;
  std::getline(file, header);
  Trace out;
  {
    std::istringstream hs(header);
    std::string hash, magic, version;
    hs >> hash >> magic >> version >> out.num_channels >> out.chunks_per_video;
    if (!hs || hash != "#" || magic != "cloudmedia-trace" || version != "v1") {
      throw util::PreconditionError("not a cloudmedia trace: " + path);
    }
  }

  std::string line;
  while (std::getline(file, line)) {
    if (line.empty() || line.front() == '#') continue;
    std::istringstream row(line);
    TraceSession s;
    char comma = 0;
    row >> s.arrival_time >> comma >> s.channel >> comma >> s.uplink >> comma;
    if (!row) throw util::PreconditionError("malformed trace row: " + line);
    std::string walk;
    row >> walk;
    std::istringstream chunks(walk);
    std::string token;
    while (std::getline(chunks, token, ';')) {
      s.chunks.push_back(std::stoi(token));
    }
    out.sessions.push_back(std::move(s));
  }
  out.validate();
  return out;
}

TraceAnalyzer::TraceAnalyzer(Trace trace, core::VodParameters params)
    : trace_(std::move(trace)), params_(params) {
  trace_.validate();
  params_.validate();
  CM_EXPECTS(trace_.chunks_per_video == params_.chunks_per_video);
}

util::Matrix TraceAnalyzer::empirical_transfer(int channel) const {
  CM_EXPECTS(channel >= 0 && channel < trace_.num_channels);
  const auto j = static_cast<std::size_t>(trace_.chunks_per_video);
  util::Matrix counts(j, j);
  std::vector<double> visits(j, 0.0);
  for (const TraceSession& s : trace_.sessions) {
    if (s.channel != channel) continue;
    for (std::size_t k = 0; k < s.chunks.size(); ++k) {
      const auto from = static_cast<std::size_t>(s.chunks[k]);
      visits[from] += 1.0;
      if (k + 1 < s.chunks.size()) {
        counts(from, static_cast<std::size_t>(s.chunks[k + 1])) += 1.0;
      }
    }
  }
  util::Matrix p(j, j);
  for (std::size_t i = 0; i < j; ++i) {
    if (visits[i] <= 0.0) continue;
    for (std::size_t q = 0; q < j; ++q) p(i, q) = counts(i, q) / visits[i];
  }
  return p;
}

std::vector<double> TraceAnalyzer::empirical_entry(int channel) const {
  CM_EXPECTS(channel >= 0 && channel < trace_.num_channels);
  const auto j = static_cast<std::size_t>(trace_.chunks_per_video);
  std::vector<double> entry(j, 0.0);
  double total = 0.0;
  for (const TraceSession& s : trace_.sessions) {
    if (s.channel != channel) continue;
    entry[static_cast<std::size_t>(s.chunks.front())] += 1.0;
    total += 1.0;
  }
  if (total > 0.0) {
    for (double& e : entry) e /= total;
  }
  return entry;
}

double TraceAnalyzer::arrival_rate(int channel, double t0, double t1) const {
  CM_EXPECTS(channel >= 0 && channel < trace_.num_channels);
  CM_EXPECTS(t1 > t0);
  std::size_t count = 0;
  for (const TraceSession& s : trace_.sessions) {
    if (s.channel == channel && s.arrival_time >= t0 && s.arrival_time < t1) {
      ++count;
    }
  }
  return static_cast<double>(count) / (t1 - t0);
}

std::vector<double> TraceAnalyzer::occupancy(int channel, double t) const {
  CM_EXPECTS(channel >= 0 && channel < trace_.num_channels);
  const auto j = static_cast<std::size_t>(trace_.chunks_per_video);
  std::vector<double> occ(j, 0.0);
  const double t0 = params_.chunk_duration;
  for (const TraceSession& s : trace_.sessions) {
    if (s.channel != channel || s.arrival_time > t) continue;
    // Chunk k of the walk is watched on [arrival + k·T0, arrival + (k+1)·T0).
    const double offset = t - s.arrival_time;
    const auto k = static_cast<std::size_t>(offset / t0);
    if (k < s.chunks.size()) {
      occ[static_cast<std::size_t>(s.chunks[k])] += 1.0;
    }
  }
  return occ;
}

std::vector<core::TrackerReport> TraceAnalyzer::reports(
    double interval, double mean_peer_uplink) const {
  CM_EXPECTS(interval > 0.0);
  CM_EXPECTS(mean_peer_uplink >= 0.0);

  const double horizon = trace_.horizon();
  const auto intervals =
      static_cast<std::size_t>(std::ceil(horizon / interval));

  std::vector<core::TrackerReport> out;
  out.reserve(intervals);
  for (std::size_t k = 0; k < intervals; ++k) {
    const double t0 = static_cast<double>(k) * interval;
    const double t1 = t0 + interval;
    core::TrackerReport report;
    report.interval_start = t0;
    report.interval_length = interval;
    report.channels.reserve(static_cast<std::size_t>(trace_.num_channels));
    for (int c = 0; c < trace_.num_channels; ++c) {
      core::ChannelObservation obs;
      obs.arrival_rate = arrival_rate(c, t0, t1);
      obs.transfer = empirical_transfer(c);
      obs.entry = empirical_entry(c);
      obs.occupancy = occupancy(c, t1);
      obs.mean_peer_uplink = mean_peer_uplink;
      report.channels.push_back(std::move(obs));
    }
    out.push_back(std::move(report));
  }
  return out;
}

}  // namespace cloudmedia::trace
