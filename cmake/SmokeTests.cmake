# Smoke tier: fast pass/fail runs of paper-figure code, labelled "smoke".
# Run with `ctest -L smoke`. Each job downsizes the simulated horizon where
# the binary takes flags, so the whole tier completes in well under a minute.

# Per-test timeout. The default fits an optimized build; the CI sanitize
# job raises it (ASan/UBSan on a Debug build is several times slower).
if(NOT DEFINED CLOUDMEDIA_SMOKE_TIMEOUT)
  set(CLOUDMEDIA_SMOKE_TIMEOUT 45)
endif()

# add_smoke_test(<name> <target> [args...])
function(add_smoke_test name target)
  if(NOT TARGET ${target})
    message(WARNING "smoke test ${name}: target ${target} missing, skipped")
    return()
  endif()
  add_test(NAME smoke.${name} COMMAND ${target} ${ARGN})
  set_tests_properties(smoke.${name} PROPERTIES
    LABELS "smoke"
    TIMEOUT ${CLOUDMEDIA_SMOKE_TIMEOUT})
endfunction()

if(CLOUDMEDIA_BUILD_EXAMPLES)
  add_smoke_test(quickstart example_quickstart)
  add_smoke_test(capacity_planning example_capacity_planning)
  add_smoke_test(cs_vs_p2p example_cs_vs_p2p --hours=2 --seed=42)
  add_smoke_test(flash_crowd example_flash_crowd --hours=2 --warmup=1 --seed=42)
  add_smoke_test(forecasting example_forecasting --days=2 --seed=42)
  add_smoke_test(geo_distributed example_geo_distributed --hours=2 --seed=42)
  add_smoke_test(trace_replay example_trace_replay --hours=2 --seed=42)
endif()

if(CLOUDMEDIA_BUILD_TOOLS)
  add_smoke_test(diag_hourly tool_diag_hourly --hours=2 --seed=42)
  # The sweep_demo golden preset (the same grid the goldens/ snapshot
  # pins); CI uploads its CSV/JSON.
  add_smoke_test(sweep_demo tool_sweep --golden=sweep_demo --threads=4
    --out=${CMAKE_BINARY_DIR}/artifacts/sweep_demo)
  # One composed-scenario sweep per commit: `a+b` goes through
  # ScenarioCatalog::resolve end to end (CI runs the smoke tier on both
  # gcc and clang, so the resolver is exercised on each).
  add_smoke_test(sweep_composed tool_sweep
    --scenario=flash_crowd+churn_heavy --grid mode=cs,p2p
    --hours=0.25 --warmup=0.1 --seed=42
    --out=${CMAKE_BINARY_DIR}/artifacts/sweep_composed)
  # One timed-scenario sweep per commit: `@`-ops travel through resolve,
  # land on the config timeline, and fire at the hour-1 and hour-2
  # provisioning boundaries inside the 0.5 + 2.5 h horizon.
  add_smoke_test(sweep_timeline tool_sweep
    --scenario=regional_outage@1h+recovery@2h --grid mode=cs
    --hours=2.5 --warmup=0.5 --seed=42
    --out=${CMAKE_BINARY_DIR}/artifacts/sweep_timeline)
  # Gate the smoke tier on the checked-in snapshot: the demo output just
  # written above must diff clean against goldens/sweep_demo.json.
  add_smoke_test(golden_diff tool_sweep --diff
    ${CMAKE_BINARY_DIR}/artifacts/sweep_demo.json
    ${PROJECT_SOURCE_DIR}/goldens/sweep_demo.json
    --out=${CMAKE_BINARY_DIR}/artifacts/golden_diff.json)
  if(TEST smoke.golden_diff)
    set_tests_properties(smoke.golden_diff PROPERTIES DEPENDS smoke.sweep_demo)
  endif()
  # Scenario fuzzer at smoke scale: a few seeded random profiles through
  # all four invariants (conservation, budget, quality, determinism); the
  # full 25-profile sweep runs in CI's fuzz-smoke step with a
  # commit-stable seed. Plus the pinned fuzzer-found repro, replayed so
  # the budget-rounding contract is exercised under the sanitizers too.
  add_smoke_test(fuzz tool_fuzz --runs=3 --seed=42
    --out=${CMAKE_BINARY_DIR}/artifacts/fuzz)
  add_smoke_test(fuzz_replay tool_fuzz
    --replay=${PROJECT_SOURCE_DIR}/profiles/fuzz/budget_rounding.json)
  # Distributed path, end to end: the same demo grid as two --shard halves,
  # stitched with --merge, then diffed against the committed golden — the
  # shard/merge round-trip must reproduce the single-process bytes.
  add_smoke_test(sweep_shard0 tool_sweep --golden=sweep_demo --shard=0/2
    --threads=2 --out=${CMAKE_BINARY_DIR}/artifacts/sweep_demo_shard0)
  add_smoke_test(sweep_shard1 tool_sweep --golden=sweep_demo --shard=1/2
    --threads=2 --out=${CMAKE_BINARY_DIR}/artifacts/sweep_demo_shard1)
  add_smoke_test(sweep_merge tool_sweep --merge
    ${CMAKE_BINARY_DIR}/artifacts/sweep_demo_merged
    ${CMAKE_BINARY_DIR}/artifacts/sweep_demo_shard0.json
    ${CMAKE_BINARY_DIR}/artifacts/sweep_demo_shard1.json)
  add_smoke_test(shard_merge_diff tool_sweep --diff
    ${CMAKE_BINARY_DIR}/artifacts/sweep_demo_merged.json
    ${PROJECT_SOURCE_DIR}/goldens/sweep_demo.json
    --out=${CMAKE_BINARY_DIR}/artifacts/shard_merge_diff.json)
  if(TEST smoke.sweep_merge)
    set_tests_properties(smoke.sweep_merge PROPERTIES
      DEPENDS "smoke.sweep_shard0;smoke.sweep_shard1")
    set_tests_properties(smoke.shard_merge_diff PROPERTIES
      DEPENDS smoke.sweep_merge)
  endif()
endif()

# The sweep engine's contract tests — thread-count determinism, the
# scenario-catalog round-trip, and the parameter-applier registry — also
# gate the smoke tier, so the fast path (scripts/verify.sh --smoke, CI's
# smoke step) cannot pass with a nondeterministic or unconstructible sweep.
if(TARGET sweep_test)
  add_smoke_test(sweep_determinism sweep_test
    --gtest_filter=SweepRunner.*:ScenarioCatalog.*:ParamGrid.*)
endif()

# One downscaled bench per paper-figure family (fig04–fig11) and per
# sweep-engine ablation — every migrated bench stays runnable end to end.
if(CLOUDMEDIA_BUILD_BENCH)
  set(CLOUDMEDIA_SMOKE_ARGS --hours=2 --warmup=1 --seed=42)
  add_smoke_test(fig04 bench_fig04_capacity_provisioning ${CLOUDMEDIA_SMOKE_ARGS})
  add_smoke_test(fig05 bench_fig05_streaming_quality ${CLOUDMEDIA_SMOKE_ARGS})
  add_smoke_test(fig06 bench_fig06_quality_vs_channel_size ${CLOUDMEDIA_SMOKE_ARGS})
  add_smoke_test(fig07 bench_fig07_bandwidth_vs_channel_size ${CLOUDMEDIA_SMOKE_ARGS})
  add_smoke_test(fig08 bench_fig08_storage_utility ${CLOUDMEDIA_SMOKE_ARGS})
  add_smoke_test(fig09 bench_fig09_vm_utility ${CLOUDMEDIA_SMOKE_ARGS})
  add_smoke_test(fig10 bench_fig10_vm_cost ${CLOUDMEDIA_SMOKE_ARGS})
  add_smoke_test(fig11 bench_fig11_peer_bandwidth_sufficiency ${CLOUDMEDIA_SMOKE_ARGS})
  set(CLOUDMEDIA_ABLATION_SMOKE_ARGS --hours=1 --warmup=0.25 --seed=42)
  add_smoke_test(ablation_boot_delay bench_ablation_boot_delay
    ${CLOUDMEDIA_ABLATION_SMOKE_ARGS})
  add_smoke_test(ablation_chunk_size bench_ablation_chunk_size
    ${CLOUDMEDIA_ABLATION_SMOKE_ARGS})
  add_smoke_test(ablation_geo bench_ablation_geo
    ${CLOUDMEDIA_ABLATION_SMOKE_ARGS})
  add_smoke_test(ablation_hetero bench_ablation_hetero
    ${CLOUDMEDIA_ABLATION_SMOKE_ARGS})
  add_smoke_test(ablation_p2p_cap bench_ablation_p2p_cap
    ${CLOUDMEDIA_ABLATION_SMOKE_ARGS})
  add_smoke_test(ablation_prediction bench_ablation_prediction
    ${CLOUDMEDIA_ABLATION_SMOKE_ARGS} --days=1)
  add_smoke_test(ablation_pooling bench_ablation_pooling
    ${CLOUDMEDIA_ABLATION_SMOKE_ARGS})
  add_smoke_test(ablation_strategies bench_ablation_strategies
    ${CLOUDMEDIA_ABLATION_SMOKE_ARGS})
  # Sweep-engine throughput tracker (3x3 grid, downsized horizon).
  add_smoke_test(sweep_bench bench_sweep_smoke --hours=0.25 --warmup=0.1
    --out=${CMAKE_BINARY_DIR}/artifacts/BENCH_sweep.json)
  # Streaming results-store gate at smoke scale (the full ~10k-cell grid
  # runs in a dedicated CI step): flat streaming RSS + buffered separation.
  add_smoke_test(store_bench bench_store_smoke --cells=3072
    --out=${CMAKE_BINARY_DIR}/artifacts/BENCH_store_smoke.json
    --store-out=${CMAKE_BINARY_DIR}/artifacts/store_smoke)
  # Cohort-engine scale gate at smoke size (1M peak viewers; the full
  # 10M-viewer day runs in a dedicated CI step).
  add_smoke_test(cohort_bench bench_cohort_smoke --viewers=1000000 --hours=24
    --out=${CMAKE_BINARY_DIR}/artifacts/BENCH_cohort_smoke.json)
endif()

# Cohort/discrete engine equivalence gates the smoke tier too: engine=auto
# below the population threshold must replay the discrete engine bit for
# bit, or every committed golden is at risk.
if(TARGET cohort_test)
  add_smoke_test(cohort_equivalence cohort_test
    --gtest_filter=CohortEquivalence.*:EngineKnob.*)
endif()
