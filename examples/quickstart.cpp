// Quickstart: the analytical core of CloudMedia on one video channel.
//
// Walks the Sec.-IV pipeline by hand: viewing behaviour -> Jackson traffic
// equations -> Erlang server sizing -> P2P supply -> cloud residual, then
// solves the two Sec.-V optimizations for this channel and prints the plan.
//
// Build: cmake --build build --target example_quickstart
// Run:   ./build/examples/example_quickstart

#include <cstdio>

#include "core/capacity.h"
#include "core/clusters.h"
#include "core/jackson.h"
#include "core/p2p.h"
#include "core/params.h"
#include "core/storage_rental.h"
#include "core/vm_allocation.h"
#include "util/units.h"
#include "workload/viewing.h"

using namespace cloudmedia;

int main() {
  // The paper's VoD model: r = 400 kbps, T0 = 5 min, J = 20 chunks,
  // R = 10 Mbps per VM.
  const core::VodParameters params;
  std::printf("CloudMedia quickstart\n");
  std::printf("  streaming rate r   : %.0f kbps\n",
              util::to_kbps(params.streaming_rate));
  std::printf("  chunk               : %.0f MB (%.0f s of playback)\n",
              util::to_megabytes(params.chunk_bytes()), params.chunk_duration);
  std::printf("  VM bandwidth R      : %.0f Mbps  (service rate mu = %.4f /s)\n",
              util::to_mbps(params.vm_bandwidth), params.service_rate());

  // Viewing behaviour -> the chunk transfer matrix P (Sec. III-B).
  workload::ViewingBehavior behavior;  // alpha=0.6, jump=0.28, leave=0.12
  const util::Matrix transfer = behavior.transfer_matrix(params.chunks_per_video);
  const std::vector<double> entry =
      behavior.entry_distribution(params.chunks_per_video);

  // A channel receiving 0.2 users/s (~7 chunks/session -> ~420 concurrent).
  const double external_rate = 0.2;
  const std::vector<double> lambdas =
      core::solve_traffic_equations(transfer, entry, external_rate);

  std::printf("\nPer-chunk arrival rates (traffic equations, Eqn. 1):\n  ");
  for (double l : lambdas) std::printf("%.3f ", l);
  std::printf("\n");

  // Client-server capacity (Sec. IV-B), paper-literal per-chunk sizing.
  core::CapacityPlanner literal(params, core::CapacityModel::kPerChunkLiteral);
  const core::ChannelCapacityPlan cs = literal.plan(lambdas);
  std::printf("\nClient-server demand (per-chunk M/M/m, E[sojourn] <= T0):\n");
  std::printf("  total servers m = %d, total bandwidth = %.1f Mbps\n",
              cs.total_servers, util::to_mbps(cs.total_bandwidth));

  // Channel-pooled refinement (what the experiments use; DESIGN.md).
  core::CapacityPlanner pooled(params, core::CapacityModel::kChannelPooled);
  const core::ChannelCapacityPlan cs_pooled = pooled.plan(lambdas);
  std::printf("  pooled sizing: M = %d VMs = %.1f Mbps\n",
              cs_pooled.total_servers, util::to_mbps(cs_pooled.total_bandwidth));

  // P2P mode: peers with mean uplink = r supply most of the demand. The
  // availability populations are the queue occupancies λ_i·T0 (Little).
  std::vector<double> population(lambdas.size());
  for (std::size_t i = 0; i < lambdas.size(); ++i) {
    population[i] = lambdas[i] * params.chunk_duration;
  }
  const core::P2pSupply supply = core::solve_p2p_supply(
      transfer, cs_pooled, population,
      /*peer_upload_mean=*/params.streaming_rate, params.streaming_rate);
  double gamma = 0.0, delta = 0.0;
  for (std::size_t i = 0; i < supply.peer_supply.size(); ++i) {
    gamma += supply.peer_supply[i];
    delta += supply.cloud_residual[i];
  }
  std::printf("\nP2P mode (Prop. 1 + Eqn. 5):\n");
  std::printf("  peer supply Gamma   = %.1f Mbps\n", util::to_mbps(gamma));
  std::printf("  cloud residual Delta= %.1f Mbps  (%.0f%% saved vs C/S)\n",
              util::to_mbps(delta),
              100.0 * (1.0 - delta / cs_pooled.total_bandwidth));

  // Sec. V: place this channel's chunks and rent VMs, paper heuristics.
  std::vector<core::ChunkDemand> chunks;
  for (int i = 0; i < params.chunks_per_video; ++i) {
    chunks.push_back({{0, i}, supply.cloud_residual[static_cast<std::size_t>(i)]});
  }
  const core::StorageProblem storage_problem{
      core::paper_nfs_clusters(), chunks, params.chunk_bytes(), /*B_S=*/1.0};
  const core::StorageAssignment storage = core::solve_storage_greedy(storage_problem);
  std::printf("\nStorage rental (Eqn. 6 heuristic): utility %.1f, cost $%.6f/h%s\n",
              storage.total_utility, storage.cost_per_hour,
              storage.feasible ? "" : "  [INFEASIBLE]");

  const core::VmProblem vm_problem{core::paper_vm_clusters(), chunks,
                                   params.vm_bandwidth, /*B_M=*/100.0};
  const core::VmAllocation vm = core::solve_vm_greedy(vm_problem);
  const core::InstancePlan instances = core::pack_instances(vm_problem, vm);
  std::printf("VM configuration (Eqn. 7 heuristic): utility %.2f, "
              "%.2f VM-hours -> %zu instances, $%.2f/h%s\n",
              vm.total_utility, vm_problem.total_vm_demand(),
              instances.instances.size(), instances.cost_per_hour,
              vm.feasible ? "" : "  [INFEASIBLE]");
  for (std::size_t v = 0; v < vm_problem.clusters.size(); ++v) {
    std::printf("    %-9s: %5.2f VMs requested, %d instances booted\n",
                vm_problem.clusters[v].name.c_str(), vm.per_cluster_total[v],
                instances.per_cluster_count[v]);
  }
  return 0;
}
