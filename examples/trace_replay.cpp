// Offline provisioning from a workload trace.
//
// The paper's evaluation is driven by a synthetic PPLive-style trace
// (Sec. VI-A). This example treats such a trace as a first-class artifact:
//   1. record one day of the paper workload into a trace (or load one
//      from --in=<csv>),
//   2. save/reload it through the CSV codec to show the round trip,
//   3. run the *offline* pipeline: TraceAnalyzer turns the trace into the
//      hourly TrackerReports the controller consumes, and the controller
//      prices out every hour's plan — "what would CloudMedia have bought
//      on this trace" without running a simulation.
//
// Run: ./build/examples/example_trace_replay [--hours=24] [--seed=42]
//      [--in=trace.csv] [--out=trace.csv] [--p2p]

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "core/controller.h"
#include "expr/config.h"
#include "expr/flags.h"
#include "trace/trace.h"
#include "workload/scenario.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);
  const double hours = flags.get("hours", 24.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_ll("seed", 42));
  const bool p2p = flags.get("p2p", false);
  const std::string in = flags.get("in", std::string{});
  const std::string out = flags.get("out", std::string{});

  const expr::ExperimentConfig cfg = expr::ExperimentConfig::make_default(
      p2p ? core::StreamingMode::kP2p : core::StreamingMode::kClientServer);

  // 1. Obtain a trace.
  trace::Trace recorded;
  if (in.empty()) {
    const workload::Workload workload(cfg.workload, seed);
    recorded = trace::record_trace(workload, hours * 3600.0);
    std::printf("Recorded %zu sessions over %.0f h of the paper workload "
                "(seed %llu).\n",
                recorded.size(), hours,
                static_cast<unsigned long long>(seed));
  } else {
    recorded = trace::load_trace_csv(in);
    std::printf("Loaded %zu sessions from %s.\n", recorded.size(), in.c_str());
  }

  const auto per_channel = recorded.sessions_per_channel();
  std::printf("channels: %d, chunks/video: %d, mean walk %.1f chunks, "
              "busiest channel %zu sessions\n\n",
              recorded.num_channels, recorded.chunks_per_video,
              recorded.mean_session_chunks(),
              *std::max_element(per_channel.begin(), per_channel.end()));

  // 2. CSV round trip.
  if (!out.empty()) {
    trace::save_trace_csv(recorded, out);
    const trace::Trace reloaded = trace::load_trace_csv(out);
    std::printf("Saved to %s and reloaded: %zu sessions (round trip %s).\n\n",
                out.c_str(), reloaded.size(),
                reloaded.size() == recorded.size() ? "OK" : "MISMATCH");
  }

  // 3. Offline provisioning: hourly reports -> controller plans.
  const trace::TraceAnalyzer analyzer(recorded, cfg.vod);
  const double uplink_mean = cfg.workload.streaming_rate;  // Fig.-11 midpoint
  const auto reports = analyzer.reports(3600.0, uplink_mean);

  core::DemandEstimatorConfig estimator;
  estimator.mode = cfg.mode;
  core::ControllerConfig controller_config{cfg.vm_clusters, cfg.nfs_clusters,
                                           cfg.vm_budget_per_hour,
                                           cfg.storage_budget_per_hour};
  const core::Controller controller(
      cfg.vod, controller_config,
      std::make_unique<core::ModelBasedPolicy>(cfg.vod, estimator));

  std::printf("Offline hourly plans (%s mode):\n", p2p ? "P2P" : "C/S");
  std::printf("%5s %10s %12s %10s %12s\n", "hour", "arrivals/s",
              "reserved Mb", "VM $/h", "storage $/h");
  double total_cost = 0.0;
  for (std::size_t k = 0; k < reports.size(); ++k) {
    double rate = 0.0;
    for (const core::ChannelObservation& obs : reports[k].channels) {
      rate += obs.arrival_rate;
    }
    const core::ProvisioningPlan plan = controller.plan(reports[k]);
    total_cost += plan.vm_cost_rate;
    std::printf("%5zu %10.3f %12.1f %10.2f %12.4f\n", k, rate,
                plan.reserved_bandwidth / 1e6 * 8.0, plan.vm_cost_rate,
                plan.storage_cost_rate);
  }
  std::printf("\nTotal VM spend for the trace: $%.2f (%.2f $/h average)\n",
              total_cost, total_cost / static_cast<double>(reports.size()));
  std::printf(
      "\nThis is the provider's capacity-planning loop run from logs alone: "
      "record (or import) a trace, let TraceAnalyzer reconstruct the "
      "tracker statistics, and price every interval's plan before renting "
      "a single VM.\n");
  return 0;
}
