// Geo-distributed CloudMedia — the paper's ongoing work ("we are expanding
// to cloud systems spanning different geographic locations", Sec. VII).
//
// Three regional deployments (Asia / Europe / Americas) each run the full
// CloudMedia stack against the same global channel catalogue but with the
// diurnal pattern shifted to local time. Each region provisions its own
// cloud; the dashboard shows what geography buys: regional bills peak at
// different hours, so the provider's *aggregate* spend is far smoother
// than any single region's — the multiplexing argument for going global.
//
// This is the example-sized tour of `src/geo`; `bench/ablation_geo` runs
// the quantified federated-vs-consolidated comparison.
//
// Run: ./build/examples/example_geo_distributed [--hours=24] [--seed=42]

#include <cstdio>

#include "expr/flags.h"
#include "geo/federation.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);
  const double hours = flags.get("hours", 24.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_ll("seed", 42));

  geo::FederationConfig cfg =
      geo::FederationConfig::make_default(core::StreamingMode::kP2p);
  cfg.base.warmup_hours = 4.0;
  cfg.base.measure_hours = hours;
  cfg.base.seed = seed;

  std::printf("Geo-distributed CloudMedia: %zu regions x full P2P stack, "
              "%.0f h (seed %llu)\n\n",
              cfg.regions.size(), hours,
              static_cast<unsigned long long>(seed));

  const geo::FederationResult fed = geo::FederationRunner::run(cfg);

  std::printf("%6s", "hour");
  for (const geo::RegionResult& region : fed.regions) {
    std::printf(" %12s", region.spec.name.c_str());
  }
  std::printf(" %12s\n", "global $/h");

  const double t0 = fed.measure_start;
  for (double t = t0; t + 3600.0 <= fed.measure_end + 1e-9; t += 3600.0) {
    std::printf("%6.0f", (t - t0) / 3600.0);
    double global = 0.0;
    for (const geo::RegionResult& region : fed.regions) {
      const double cost =
          region.result.metrics.vm_cost_rate.mean_over(t, t + 3600.0);
      std::printf(" %12.2f", cost);
      global += cost;
    }
    std::printf(" %12.2f\n", global);
  }

  std::printf("\nglobal mean bill $%.2f/h; global peak $%.2f/h "
              "(peak-to-mean %.2f); worst regional quality %.3f\n",
              fed.global_mean_cost(), fed.global_peak_cost(),
              fed.global_peak_cost() / fed.global_mean_cost(),
              fed.min_quality());
  std::printf("sum of regional peaks $%.2f/h vs global peak $%.2f/h: "
              "multiplexing gain %.2fx\n",
              fed.sum_of_regional_peaks(), fed.global_peak_cost(),
              fed.multiplexing_gain());
  std::printf(
      "Staggered time zones flatten the aggregate: each region's own peak "
      "lands at a different hour, so pooled capacity rides through all "
      "three — the economics behind the paper's geo expansion plan.\n");
  return 0;
}
