// Forecasting the demand curve — the paper's future work in practice.
//
// The paper's controller predicts next hour's arrivals with this hour's
// measurement (Sec. V-B) and defers "more accurate prediction method[s]
// based on historical data" to future work. This example builds that
// future work from the library's forecaster family: it tracks one channel
// through several days of the paper's diurnal pattern, prints how each
// forecaster chases (or anticipates) the two daily flash crowds, then
// shows the money view — what each predictor would have made the provider
// reserve, versus what was needed.
//
// Run: ./build/examples/example_forecasting [--days=5] [--channel=0]

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/capacity.h"
#include "core/jackson.h"
#include "expr/config.h"
#include "expr/flags.h"
#include "predict/accuracy.h"
#include "predict/forecaster.h"
#include "workload/scenario.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);
  const int days = flags.get("days", 5);
  const int channel = flags.get("channel", 0);
  const auto seed = static_cast<std::uint64_t>(flags.get_ll("seed", 42));

  const expr::ExperimentConfig cfg =
      expr::ExperimentConfig::make_default(core::StreamingMode::kClientServer);
  const workload::Workload workload(cfg.workload, seed);

  // True hourly mean arrival rate of the chosen channel.
  const auto true_rate = [&](int hour) {
    double acc = 0.0;
    for (int m = 0; m < 60; ++m) {
      acc += workload.channel_rate(channel, 3600.0 * hour + 60.0 * m);
    }
    return acc / 60.0;
  };

  struct Entry {
    std::string label;
    std::unique_ptr<predict::Forecaster> forecaster;
    predict::ForecastScore score;
  };
  std::vector<Entry> entries;
  for (const auto kind : {predict::ForecasterKind::kPersistence,
                          predict::ForecasterKind::kHolt,
                          predict::ForecasterKind::kSeasonalEwma,
                          predict::ForecasterKind::kHoltWinters}) {
    predict::ForecasterSpec spec;
    spec.kind = kind;
    spec.period = 24;
    entries.push_back(
        {predict::to_string(kind), predict::make_forecaster(spec), {}});
  }

  std::printf("Forecasting channel %d of the paper workload over %d days "
              "(hourly cadence, daily season)\n\n",
              channel, days);

  // Show the final day hour by hour; score every day after the first.
  std::printf("%5s %9s", "hour", "actual");
  for (const Entry& e : entries) std::printf(" %14s", e.label.c_str());
  std::printf("\n");

  for (int h = 0; h < 24 * days; ++h) {
    const double actual = true_rate(h);
    const bool show = h >= 24 * (days - 1);
    if (show) std::printf("%5d %9.4f", h % 24, actual);
    for (Entry& e : entries) {
      const double predicted = e.forecaster->forecast();
      if (h >= 24) e.score.add(predicted, actual);
      if (show) std::printf(" %14.4f", predicted);
      e.forecaster->observe(actual);
    }
    if (show) std::printf("\n");
  }

  std::printf("\nAccuracy over days 2..%d (users/s):\n", days);
  std::printf("%-14s %10s %10s %10s %9s\n", "forecaster", "MAE", "RMSE",
              "bias", "under-%");
  for (const Entry& e : entries) {
    std::printf("%-14s %10.4f %10.4f %+10.4f %8.1f%%\n", e.label.c_str(),
                e.score.mae(), e.score.rmse(), e.score.bias(),
                100.0 * e.score.under_fraction());
  }

  // The money view: feed each predictor's rates through the Sec.-IV sizing
  // and compare reserved bandwidth against the true requirement.
  const workload::ViewingBehavior& behavior = cfg.workload.behavior;
  const util::Matrix transfer = behavior.transfer_matrix(cfg.vod.chunks_per_video);
  const std::vector<double> entry_dist =
      behavior.entry_distribution(cfg.vod.chunks_per_video);
  const core::CapacityPlanner planner(cfg.vod,
                                      core::CapacityModel::kChannelPooled);
  const auto required_mbps = [&](double rate) {
    if (rate <= 0.0) return 0.0;
    const auto lambda = core::solve_traffic_equations(transfer, entry_dist, rate);
    return planner.plan(lambda).total_bandwidth / 1e6 * 8.0;
  };

  std::printf("\nProvisioning view (channel requirement from the paper's "
              "Erlang sizing):\n");
  std::printf("%-14s %16s %16s\n", "forecaster", "over-buy (Mbps·h)",
              "short (Mbps·h)");
  for (Entry& e : entries) {
    predict::ForecasterSpec spec;  // fresh pass, same kinds
    spec.kind = predict::forecaster_kind_from_string(e.label);
    spec.period = 24;
    const auto f = predict::make_forecaster(spec);
    double over = 0.0, under = 0.0;
    for (int h = 0; h < 24 * days; ++h) {
      const double actual = true_rate(h);
      if (h >= 24) {
        const double bought = required_mbps(f->forecast());
        const double needed = required_mbps(actual);
        over += std::max(0.0, bought - needed);
        under += std::max(0.0, needed - bought);
      }
      f->observe(actual);
    }
    std::printf("%-14s %16.1f %16.1f\n", e.label.c_str(), over, under);
  }

  std::printf(
      "\nTakeaway: persistence (the paper's predictor) buys yesterday's "
      "curve one hour late — it under-buys into every flash crowd and "
      "over-buys after it. The seasonal forecasters learn the daily shape "
      "and nearly eliminate the shortfall, which is the quality-critical "
      "direction.\n");
  return 0;
}
