// Client-server vs. P2P CloudMedia on the same workload.
//
// Runs the full system twice — identical users, arrivals and seeks — once
// with the cloud serving everything and once with the mesh-pull P2P overlay
// in front of it, then compares cloud bandwidth, cost and streaming quality
// (the comparison behind the paper's Figs. 4, 5 and 10).
//
// Run: ./build/examples/example_cs_vs_p2p [--hours=12] [--seed=42]

#include <cstdio>

#include "expr/config.h"
#include "expr/flags.h"
#include "expr/runner.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);
  const double hours = flags.get("hours", 12.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_ll("seed", 42));

  auto run_mode = [&](core::StreamingMode mode) {
    expr::ExperimentConfig cfg = expr::ExperimentConfig::make_default(mode);
    cfg.warmup_hours = 2.0;
    cfg.measure_hours = hours;
    cfg.seed = seed;
    return expr::ExperimentRunner::run(cfg);
  };

  std::printf("CloudMedia: client-server vs P2P over %.0f hours (seed %llu)\n",
              hours, static_cast<unsigned long long>(seed));
  const expr::ExperimentResult cs = run_mode(core::StreamingMode::kClientServer);
  const expr::ExperimentResult p2p = run_mode(core::StreamingMode::kP2p);

  std::printf("\n%-32s %14s %14s\n", "metric", "client-server", "P2P");
  const auto row = [](const char* name, double a, double b) {
    std::printf("%-32s %14.2f %14.2f\n", name, a, b);
  };
  row("avg concurrent users", cs.mean_concurrent_users(), p2p.mean_concurrent_users());
  row("reserved cloud bandwidth (Mbps)", cs.mean_reserved_mbps(), p2p.mean_reserved_mbps());
  row("used cloud bandwidth (Mbps)", cs.mean_used_cloud_mbps(), p2p.mean_used_cloud_mbps());
  row("peer-served bandwidth (Mbps)", cs.mean_used_peer_mbps(), p2p.mean_used_peer_mbps());
  row("VM rental cost ($/h)", cs.mean_vm_cost_rate(), p2p.mean_vm_cost_rate());
  row("streaming quality", cs.mean_quality(), p2p.mean_quality());
  row("reserved >= used (fraction)", cs.reserved_covers_used_fraction(),
      p2p.reserved_covers_used_fraction());

  if (p2p.mean_vm_cost_rate() > 0.0) {
    std::printf("\nP2P cuts cloud VM cost by %.1fx at a quality delta of %+.3f.\n",
                cs.mean_vm_cost_rate() / p2p.mean_vm_cost_rate(),
                p2p.mean_quality() - cs.mean_quality());
  }
  return 0;
}
