// Capacity planning dashboard: the provider-facing view of one controller
// cycle. Feeds a 20-channel Zipf library through the Sec.-IV analysis and
// both Sec.-V optimizers and prints what a VoD operator would see before
// signing the SLA: per-channel bandwidth requirements, peer offload, the
// VM shopping list per virtual cluster, chunk placement per NFS cluster,
// and the resulting hourly bill.
//
// Run: ./build/examples/example_capacity_planning [--rate=1.1] [--ratio=1.0]

#include <cstdio>
#include <memory>

#include "core/controller.h"
#include "expr/flags.h"
#include "util/units.h"
#include "workload/distributions.h"
#include "workload/viewing.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);
  const double total_rate = flags.get("rate", 1.1);
  const double uplink_ratio = flags.get("ratio", 1.0);

  const core::VodParameters params;
  const workload::ViewingBehavior behavior;
  const std::vector<double> weights = workload::zipf_weights(20, 1.0);

  // One tracker report as the controller would see it in steady state.
  core::TrackerReport report;
  report.interval_length = 3600.0;
  for (int c = 0; c < 20; ++c) {
    core::ChannelObservation obs;
    obs.arrival_rate = total_rate * weights[static_cast<std::size_t>(c)];
    obs.transfer = behavior.transfer_matrix(params.chunks_per_video);
    obs.entry = behavior.entry_distribution(params.chunks_per_video);
    obs.occupancy.assign(static_cast<std::size_t>(params.chunks_per_video), 0.0);
    obs.served_cloud_bandwidth = obs.occupancy;
    obs.mean_peer_uplink = uplink_ratio * params.streaming_rate;
    report.channels.push_back(std::move(obs));
  }

  core::DemandEstimatorConfig est;
  est.mode = core::StreamingMode::kP2p;
  core::Controller controller(
      params,
      core::ControllerConfig{core::paper_vm_clusters(),
                             core::paper_nfs_clusters(), 100.0, 1.0},
      std::make_unique<core::ModelBasedPolicy>(params, est));
  const core::ProvisioningPlan plan = controller.plan(report);

  std::printf("CloudMedia capacity plan — 20 Zipf channels, %.2f users/s, "
              "peer uplink %.1fx r\n\n", total_rate, uplink_ratio);
  std::printf("%8s %12s %14s %14s %14s\n", "channel", "arrivals/h",
              "required Mbps", "peer Mbps", "cloud Mbps");
  for (std::size_t c = 0; c < 20; ++c) {
    const core::ChannelDemandEstimate& e = plan.demand.estimates[c];
    double gamma = 0.0;
    for (double g : e.peer_supply) gamma += g;
    std::printf("%8zu %12.0f %14.1f %14.1f %14.1f\n", c,
                report.channels[c].arrival_rate * 3600.0,
                util::to_mbps(e.capacity.total_bandwidth),
                util::to_mbps(gamma), util::to_mbps(e.total_cloud_demand));
  }

  std::printf("\nVM shopping list (Eqn. 7 heuristic):\n");
  for (std::size_t v = 0; v < plan.vm_problem.clusters.size(); ++v) {
    std::printf("  %-9s: %6.2f VM-shares -> %3d instances @ $%.3f/h\n",
                plan.vm_problem.clusters[v].name.c_str(),
                plan.vm.per_cluster_total[v], plan.instances.per_cluster_count[v],
                plan.vm_problem.clusters[v].price_per_hour);
  }

  std::printf("\nNFS placement (Eqn. 6 heuristic):\n");
  std::vector<int> per_cluster(plan.storage_problem.clusters.size(), 0);
  for (int f : plan.storage.cluster_of) {
    if (f >= 0) ++per_cluster[static_cast<std::size_t>(f)];
  }
  for (std::size_t f = 0; f < per_cluster.size(); ++f) {
    std::printf("  %-9s: %3d chunks (%.1f GB)\n",
                plan.storage_problem.clusters[f].name.c_str(), per_cluster[f],
                util::to_gigabytes(per_cluster[f] * params.chunk_bytes()));
  }

  std::printf("\nbill: VMs $%.2f/h (%s), storage $%.6f/h (%s); reserved "
              "%.0f Mbps of cloud egress.\n",
              plan.vm_cost_rate, plan.vm.feasible ? "feasible" : "INFEASIBLE",
              plan.storage_cost_rate,
              plan.storage.feasible ? "feasible" : "INFEASIBLE",
              util::to_mbps(plan.reserved_bandwidth));
  std::printf("Try --ratio=0.0 (pure client-server economics) or a larger "
              "--rate to watch the budget constraints bind.\n");
  return 0;
}
