// Flash crowd: watch the dynamic provisioning loop chase a demand spike.
//
// Builds a single-peak workload (a 3x flash crowd in the early evening),
// runs the P2P CloudMedia system across it, and prints an hour-by-hour
// log of demand vs provisioned capacity vs quality — the paper's core
// claim ("cloud resources provisioned based on the predicted equilibrium
// demand serve the actual demand quite well, even at times of flash
// crowds", Sec. VI-B) in one terminal screen.
//
// Run: ./build/examples/example_flash_crowd [--hours=24 --warmup=4 --seed=42]

#include <cstdio>

#include "expr/config.h"
#include "expr/flags.h"
#include "expr/runner.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);

  expr::ExperimentConfig cfg =
      expr::ExperimentConfig::make_default(core::StreamingMode::kP2p);
  // One sharp flash crowd at hour 18, tripling the baseline arrival rate.
  cfg.workload.diurnal = workload::DiurnalPattern(0.8, {{18.0, 2.4, 1.0}});
  cfg.warmup_hours = flags.get("warmup", 4.0);
  cfg.measure_hours = flags.get("hours", 24.0);
  cfg.seed = static_cast<std::uint64_t>(flags.get_ll("seed", 42));

  std::printf("Flash crowd demo: P2P CloudMedia, 3x arrival spike at hour 18\n");
  const expr::ExperimentResult r = expr::ExperimentRunner::run(cfg);

  std::printf("\n%6s %10s %12s %12s %12s %10s %9s\n", "hour", "users",
              "reserved", "cloud used", "peer used", "cost $/h", "quality");
  for (double t = r.measure_start; t + 3600.0 <= r.measure_end; t += 3600.0) {
    std::printf("%6.0f %10.0f %9.1f Mb %9.1f Mb %9.1f Mb %10.2f %9.3f\n",
                (t - r.measure_start) / 3600.0,
                r.metrics.concurrent_users.mean_over(t, t + 3600.0),
                r.metrics.reserved_mbps.mean_over(t, t + 3600.0),
                r.metrics.used_cloud_mbps.mean_over(t, t + 3600.0),
                r.metrics.used_peer_mbps.mean_over(t, t + 3600.0),
                r.metrics.vm_cost_rate.mean_over(t, t + 3600.0),
                r.metrics.quality.mean_over(t, t + 3600.0));
  }

  std::printf("\npeak users %.0f, overall quality %.3f, VM bill $%.2f total; "
              "reserved covered used %.0f%% of the time.\n",
              r.metrics.concurrent_users.max_value(), r.mean_quality(),
              r.vm_cost_total, 100.0 * r.reserved_covers_used_fraction());
  std::printf("The hour after the spike shows the 1-hour prediction lag the "
              "paper accepts for simplicity (Sec. V-B): capacity follows "
              "demand one interval behind, while the occupancy floor and "
              "peer upload absorb the transient.\n");
  return 0;
}
