#!/usr/bin/env bash
# Fail if any tracked C++ source deviates from .clang-format.
#
# Usage: scripts/check-format.sh [--fix]
#   --fix   rewrite the offending files in place instead of failing
#
# The binary is selected with $CLANG_FORMAT (default: clang-format). CI
# pins CLANG_FORMAT=clang-format-18 — different clang-format majors
# disagree about line breaks, so match that version locally before
# trusting a clean run. A missing binary is a hard error (exit 2), never a
# silent pass: a format gate that cannot run must not report success.
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check-format: FAIL — '$CLANG_FORMAT' not found on PATH." >&2
  echo "check-format: install clang-format (CI uses clang-format-18) or" >&2
  echo "check-format: point CLANG_FORMAT at a binary. Refusing to report" >&2
  echo "check-format: the tree clean without checking it." >&2
  exit 2
fi
echo "check-format: using $("$CLANG_FORMAT" --version)"

mapfile -t files < <(git ls-files '*.cc' '*.cpp' '*.h')
if [ "${#files[@]}" -eq 0 ]; then
  echo "check-format: FAIL — no tracked C++ sources found (wrong directory?)" >&2
  exit 2
fi

if [[ "${1:-}" == "--fix" ]]; then
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "check-format: reformatted ${#files[@]} files (review 'git diff')"
else
  "$CLANG_FORMAT" --dry-run -Werror "${files[@]}"
  echo "check-format: ${#files[@]} files clean"
fi
