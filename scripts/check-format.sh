#!/usr/bin/env bash
# Fail if any tracked C++ source deviates from .clang-format.
# Usage: scripts/check-format.sh [--fix]
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "error: $CLANG_FORMAT not found (set CLANG_FORMAT=... to override)" >&2
  exit 2
fi

mapfile -t files < <(git ls-files '*.cc' '*.cpp' '*.h')
if [[ "${1:-}" == "--fix" ]]; then
  "$CLANG_FORMAT" -i "${files[@]}"
else
  "$CLANG_FORMAT" --dry-run -Werror "${files[@]}"
fi
