#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the CTest suite.
#
# Usage: scripts/verify.sh [--smoke] [build-dir]
#   --smoke   run only the smoke tier (fast pass/fail figure benches, the
#             tool_sweep demo grid, and the sweep determinism tests)
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
BUILD_DIR=""
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    -*) echo "verify.sh: unknown option '$arg'" >&2; exit 2 ;;
    *)
      if [ -n "$BUILD_DIR" ]; then
        echo "verify.sh: more than one build dir given" >&2; exit 2
      fi
      BUILD_DIR="$arg" ;;
  esac
done
BUILD_DIR="${BUILD_DIR:-build}"
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
if [ "$SMOKE" = "1" ]; then
  ctest --test-dir "$BUILD_DIR" -L smoke --output-on-failure \
    -j "$(nproc 2>/dev/null || echo 4)"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc 2>/dev/null || echo 4)"
fi
