#!/usr/bin/env bash
# Verify the tree: configure, build, and run a test tier.
#
# Usage: scripts/verify.sh [--smoke | --golden | --bench] [build-dir]
#
#   (default)  tier-1 verify: the full CTest suite (unit + integration +
#              smoke) — the gate every commit must pass.
#   --smoke    only the smoke tier: fast pass/fail figure benches, the
#              tool_sweep demo grid, and the sweep determinism tests.
#   --golden   the figures gate CI runs on every commit: every golden
#              preset executed on 1 thread and on all cores, the two CSVs
#              byte-compared, and the result diffed against the committed
#              goldens/ snapshot where one exists; plus the cohort/discrete
#              engine-equivalence tests and the distributed path —
#              sweep_demo as two --shard halves, --merge, cmp.
#   --bench    the three self-gating performance benches CI runs at full
#              scale: bench_store_smoke (streaming-RSS gates),
#              bench_cohort_smoke (10M-viewer day), bench_discrete_smoke
#              (events/s >= 2x the pre-overhaul baseline + RSS cap). Each
#              writes its BENCH_*.json under <build-dir>/artifacts/.
#
# The selected tier's exit code is the script's exit code.
set -euo pipefail
cd "$(dirname "$0")/.."

usage() {
  sed -n '2,20p' "$0" | sed 's/^# \{0,1\}//'
}

MODE=full
BUILD_DIR=""
for arg in "$@"; do
  case "$arg" in
    --smoke) MODE=smoke ;;
    --golden) MODE=golden ;;
    --bench) MODE=bench ;;
    -h|--help) usage; exit 0 ;;
    -*) echo "verify.sh: unknown option '$arg'" >&2; usage >&2; exit 2 ;;
    *)
      if [ -n "$BUILD_DIR" ]; then
        echo "verify.sh: more than one build dir given" >&2; exit 2
      fi
      BUILD_DIR="$arg" ;;
  esac
done
BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j

JOBS="$(nproc 2>/dev/null || echo 4)"
rc=0
case "$MODE" in
  full)
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" || rc=$?
    ;;
  smoke)
    ctest --test-dir "$BUILD_DIR" -L smoke --output-on-failure -j "$JOBS" \
      || rc=$?
    ;;
  golden)
    TOOL="$BUILD_DIR/tools/tool_sweep"
    OUT="$BUILD_DIR/artifacts/figures"
    mkdir -p "$OUT"
    for name in $("$TOOL" --list-goldens); do
      echo "== $name =="
      if ! "$TOOL" --golden="$name" --dump-profile \
             | cmp -s - "profiles/${name}.json"; then
        echo "verify.sh: $name: profiles/${name}.json is not the canonical" \
             "--dump-profile output" >&2
        rc=1
      fi
      "$TOOL" --golden="$name" --threads=1 --out="$OUT/${name}_t1" >/dev/null
      "$TOOL" --golden="$name" --threads="$JOBS" --out="$OUT/${name}_tn" \
        >/dev/null
      if ! cmp "$OUT/${name}_t1.csv" "$OUT/${name}_tn.csv"; then
        echo "verify.sh: $name: CSV depends on the thread count" >&2
        rc=1
      fi
      if [ -f "goldens/${name}.json" ]; then
        if ! "$TOOL" --diff "$OUT/${name}_t1.json" "goldens/${name}.json" \
               --out="$OUT/${name}_diff.json" >/dev/null; then
          echo "verify.sh: $name: differs from committed goldens/${name}.json" \
               "(report: $OUT/${name}_diff.json)" >&2
          rc=1
        fi
      else
        echo "   (no committed snapshot — thread check only)"
      fi
    done
    # Engine equivalence: the golden snapshots are only trustworthy if
    # engine=auto keeps routing small populations to the discrete core
    # bit for bit (and the cohort core itself stays deterministic).
    echo "== cohort/discrete equivalence =="
    ctest --test-dir "$BUILD_DIR" -R '[Cc]ohort' --output-on-failure \
      -j "$JOBS" || rc=1
    # Distributed path: the demo preset as two --shard halves, stitched
    # with --merge, must be byte-identical to the committed golden.
    echo "== sweep_demo (2 shards + merge) =="
    "$TOOL" --golden=sweep_demo --shard=0/2 --threads=2 \
      --out="$OUT/sweep_demo_shard0" >/dev/null
    "$TOOL" --golden=sweep_demo --shard=1/2 --threads=2 \
      --out="$OUT/sweep_demo_shard1" >/dev/null
    "$TOOL" --merge "$OUT/sweep_demo_merged" \
      "$OUT/sweep_demo_shard0.json" "$OUT/sweep_demo_shard1.json" >/dev/null
    for ext in csv json; do
      if ! cmp "$OUT/sweep_demo_merged.$ext" "goldens/sweep_demo.$ext"; then
        echo "verify.sh: sharded sweep_demo merge is not byte-identical" \
             "to goldens/sweep_demo.$ext" >&2
        rc=1
      fi
    done
    ;;
  bench)
    # Same binaries and gates as the CI bench steps: each one exits
    # non-zero when its own regression gate trips (sanitizer builds skip
    # the rate/RSS gates but still exercise the paths).
    OUT="$BUILD_DIR/artifacts"
    mkdir -p "$OUT"
    echo "== bench_store_smoke (streaming vs buffered RSS) =="
    "$BUILD_DIR/bench/bench_store_smoke" \
      --out="$OUT/BENCH_store.json" \
      --store-out="$OUT/store_full/run" || rc=1
    echo "== bench_cohort_smoke (10M-viewer day) =="
    "$BUILD_DIR/bench/bench_cohort_smoke" \
      --out="$OUT/BENCH_cohort.json" || rc=1
    echo "== bench_discrete_smoke (events/s >= 2x baseline) =="
    "$BUILD_DIR/bench/bench_discrete_smoke" \
      --out="$OUT/BENCH_discrete.json" || rc=1
    ;;
esac

if [ "$rc" -ne 0 ]; then
  echo "verify.sh: $MODE tier FAILED (exit $rc)" >&2
else
  echo "verify.sh: $MODE tier passed"
fi
exit "$rc"
