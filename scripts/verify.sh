#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the full CTest suite.
# Usage: scripts/verify.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc 2>/dev/null || echo 4)"
