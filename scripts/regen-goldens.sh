#!/usr/bin/env bash
# Regenerate the checked-in golden sweep snapshots (goldens/*.{csv,json}).
#
# The snapshots pin the exact CSV/JSON output of the frozen golden presets
# (src/sweep/goldens.cc) at kGoldenSeed. Rerun this ONLY after a deliberate
# change to provisioning behavior, the util::Rng stream, the sweep output
# schema, or a preset definition — then commit the moved goldens together
# with the change and say in the commit message why they moved. A golden
# diff you cannot explain is a regression, not a reason to regenerate.
#
# Usage: scripts/regen-goldens.sh [build-dir] [preset...]
#   With preset names, only those snapshots are regenerated (a deliberate
#   change to one figure should not churn the others' files in the diff).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift $(( $# > 0 ? 1 : 0 ))
ONLY=("$@")

cmake -B "$BUILD_DIR" -S . > /dev/null
cmake --build "$BUILD_DIR" -j --target tool_sweep > /dev/null
TOOL="$BUILD_DIR/tools/tool_sweep"

wanted() {
  [ "${#ONLY[@]}" -eq 0 ] && return 0
  local name
  for name in ${ONLY[@]+"${ONLY[@]}"}; do
    [ "$name" = "$1" ] && return 0
  done
  return 1
}

# Reject typos up front: every requested preset must exist. (The ${ONLY[@]+}
# guards keep empty-array expansion working under set -u on bash 3.2.)
for name in ${ONLY[@]+"${ONLY[@]}"}; do
  "$TOOL" --list-goldens | grep -qx "$name" || {
    echo "regen-goldens: unknown preset '$name' (see --list-goldens)" >&2
    exit 2
  }
done

mkdir -p goldens
for name in $("$TOOL" --list-goldens); do
  wanted "$name" || continue
  "$TOOL" --golden="$name" --out="goldens/$name" > /dev/null
  echo "regenerated goldens/$name.{csv,json}"
done
echo "done — review 'git diff goldens/' before committing"
