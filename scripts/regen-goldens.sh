#!/usr/bin/env bash
# Regenerate the checked-in golden sweep snapshots (goldens/*.{csv,json}).
#
# The snapshots pin the exact CSV/JSON output of the frozen golden presets
# (src/sweep/goldens.cc) at kGoldenSeed. Rerun this ONLY after a deliberate
# change to provisioning behavior, the util::Rng stream, the sweep output
# schema, or a preset definition — then commit the moved goldens together
# with the change and say in the commit message why they moved. A golden
# diff you cannot explain is a regression, not a reason to regenerate.
#
# Usage: scripts/regen-goldens.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
cmake -B "$BUILD_DIR" -S . > /dev/null
cmake --build "$BUILD_DIR" -j --target tool_sweep > /dev/null
TOOL="$BUILD_DIR/tools/tool_sweep"

mkdir -p goldens
for name in $("$TOOL" --list-goldens); do
  "$TOOL" --golden="$name" --out="goldens/$name" > /dev/null
  echo "regenerated goldens/$name.{csv,json}"
done
echo "done — review 'git diff goldens/' before committing"
