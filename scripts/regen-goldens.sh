#!/usr/bin/env bash
# Regenerate the checked-in golden sweep snapshots (goldens/*.{csv,json})
# from the committed experiment profiles (profiles/*.json).
#
# The snapshots pin the exact CSV/JSON output of the frozen golden presets
# at kGoldenSeed; the presets themselves are the profiles/*.json documents,
# embedded into the library at build time (cmake/EmbedProfiles.cmake).
# Rerun this ONLY after a deliberate change to provisioning behavior, the
# util::Rng stream, the sweep output schema, or a profile — then commit the
# moved goldens together with the change and say in the commit message why
# they moved. A golden diff you cannot explain is a regression, not a
# reason to regenerate.
#
# Usage: scripts/regen-goldens.sh [build-dir] [preset...]
#   With preset names, only those snapshots are regenerated (a deliberate
#   change to one figure should not churn the others' files in the diff).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift $(( $# > 0 ? 1 : 0 ))
ONLY=("$@")

cmake -B "$BUILD_DIR" -S . > /dev/null
cmake --build "$BUILD_DIR" -j --target tool_sweep > /dev/null
TOOL="$BUILD_DIR/tools/tool_sweep"

wanted() {
  [ "${#ONLY[@]}" -eq 0 ] && return 0
  local name
  for name in ${ONLY[@]+"${ONLY[@]}"}; do
    [ "$name" = "$1" ] && return 0
  done
  return 1
}

# Reject typos up front: every requested preset must exist as a profile.
# (The ${ONLY[@]+} guards keep empty-array expansion working under set -u
# on bash 3.2.)
for name in ${ONLY[@]+"${ONLY[@]}"}; do
  [ -f "profiles/$name.json" ] || {
    echo "regen-goldens: no profiles/$name.json (see --list-goldens)" >&2
    exit 2
  }
done

# Sanity gates before any snapshot moves:
#  1. every committed profile must canonicalize to its own bytes
#     (--dump-profile is the load -> spec -> dump round trip), and its
#     "name" field must agree with the file stem — the embed shim
#     (goldens.cc) refuses mismatches, so catch them here with a better
#     message;
#  2. the built tool's preset list must match the profiles/ directory,
#     i.e. the embedded copies are not stale.
for file in profiles/*.json; do
  name="$(basename "$file" .json)"
  grep -q "\"name\": \"$name\"" "$file" || {
    echo "regen-goldens: $file \"name\" field and file stem disagree" >&2
    exit 2
  }
  "$TOOL" --profile="$file" --dump-profile | cmp -s - "$file" || {
    echo "regen-goldens: $file is not canonical — rewrite it with" >&2
    echo "  $TOOL --profile=$file --dump-profile > $file" >&2
    exit 2
  }
done
diff <("$TOOL" --list-goldens | sort) \
     <(ls profiles/*.json | xargs -n1 basename | sed 's/\.json$//' | sort) || {
  echo "regen-goldens: built-in preset list and profiles/ disagree" >&2
  echo "  (stale build? rerun cmake so EmbedProfiles.cmake re-embeds)" >&2
  exit 2
}

mkdir -p goldens
for name in $("$TOOL" --list-goldens); do
  wanted "$name" || continue
  "$TOOL" --golden="$name" --out="goldens/$name" > /dev/null
  # Only the final .csv/.json are pinned; drop the streaming sidecars the
  # results store writes alongside them.
  rm -f "goldens/$name.jsonl" "goldens/$name.stream.csv"
  echo "regenerated goldens/$name.{csv,json}"
done
echo "done — review 'git diff goldens/' before committing"
